"""The repo-specific rules, each frozen from a real past bug or a
standing ROADMAP invariant (see ``docs/invariants.md`` for the full
motivation of every rule).

=======  ==================================================================
RPR001   clause intake must go through ``Formula.add_clause`` (PR 1's
         tautology-screening soundness fix, frozen as a lint rule)
RPR002   unbounded solve loops must poll ``should_stop``/cancel (PR 5's
         in-query cancellation gap, frozen as a lint rule)
RPR003   solver-decision code must not iterate raw sets / ``dict.keys()``
         or consult unseeded ``random`` / ``time.time()`` (the
         differential oracle pool == single == scratch == exact-dsatur
         rots silently if decision order drifts)
RPR004   ``preprocess`` calls in incremental/Session/Pool contexts must
         pass ``frozen=`` (pure-literal/variable elimination is unsound
         for variables later used in assumptions or growth clauses)
RPR005   ``CDCLSolver`` is constructed only in ``sat/`` and the backend
         registry chokepoints, so the ROADMAP's compiled ``native`` twin
         can swap in without call-site changes
RPR006   worker payloads crossing the ``repro.batch`` process-pool
         boundary must be top-level picklables (no lambdas / closures)
RPR007   deadline arithmetic must go through ``repro.resilience.Deadline``
         — raw ``time.time()``/``time.monotonic()`` expiry checks outside
         ``resilience/`` re-open the drift/clamping bugs PR 7 unified
         (elapsed-time *measurement* stays allowed)
=======  ==================================================================
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set, Tuple

from .core import (
    KIND_NESTED_FUNC,
    KIND_PROCESS_EXECUTOR,
    KIND_THREAD_EXECUTOR,
    Finding,
    Rule,
    ScopeResolver,
    SourceFile,
    register_rule,
)

#: Call names that consume an iterable order-insensitively: handing a
#: raw set to these cannot leak iteration order into solver decisions.
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)

_MUTATORS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse"}
)


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


def _describe(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expression>"


# --------------------------------------------------------------------------
# RPR001 — clause intake
# --------------------------------------------------------------------------


@register_rule
class ClauseIntakeRule(Rule):
    """Raw mutation of a ``.clauses`` list bypasses ``add_clause`` — and
    with it the canonicalization + tautology screening that PR 1's
    soundness fix depends on (tautologies reaching subsumption could
    flip SAT instances to UNSAT)."""

    rule_id = "RPR001"
    title = "clause intake must go through Formula.add_clause"
    rationale = (
        "PR 1 unsoundness: tautologies that bypassed intake screening "
        "poisoned self-subsuming resolution"
    )

    def applies_to(self, rel: str) -> bool:
        # The solver layer and the Formula class itself own the clause
        # list; everyone else is an encoder and must use add_clause.
        return not rel.startswith("sat/") and rel != "core/formula.py"

    def check(self, source: SourceFile, resolver: ScopeResolver) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "clauses"
                ):
                    yield source.finding(
                        self.rule_id,
                        node,
                        "raw clause-list mutation "
                        f"`{_describe(func.value)}.{func.attr}(...)` bypasses "
                        "add_clause intake (canonicalization + tautology "
                        "screening); route the clause through "
                        "Formula.add_clause",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    stored = target
                    if isinstance(stored, ast.Subscript):
                        stored = stored.value
                    if (
                        isinstance(stored, ast.Attribute)
                        and stored.attr == "clauses"
                        and isinstance(stored.value, (ast.Name, ast.Attribute))
                    ):
                        yield source.finding(
                            self.rule_id,
                            node,
                            f"assignment to `{_describe(stored)}` replaces the "
                            "clause list wholesale; build a fresh Formula via "
                            "add_clause so intake screening applies",
                        )


# --------------------------------------------------------------------------
# RPR002 — cancellation
# --------------------------------------------------------------------------

_SOLVE_NAME_RE = re.compile(
    r"solve|minimi|optimi|search|descent|decide|probe", re.IGNORECASE
)


def _loop_is_unbounded(node: ast.While) -> bool:
    test = node.test
    return isinstance(test, ast.Constant) and bool(test.value)


_STOP_NAME_RE = re.compile(r"stop|cancel", re.IGNORECASE)


def _node_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _expr_mentions_stop_name(node: ast.AST) -> bool:
    return any(
        _STOP_NAME_RE.search(_node_name(sub))
        for sub in ast.walk(node)
        if _node_name(sub)
    )


def _is_none_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _subtree_polls_stop(node: ast.AST) -> bool:
    """True when the loop body actually *consults* a stop/cancel
    callable: calls it, guards a conditional on it, or forwards it into
    a callee.  A bare mention (an unused alias, a string-adjacent name
    like ``early_stop_rounds`` in an assignment target) does not count —
    the loop must be able to exit because of it.
    """
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            # Directly calling the stop callable: should_stop() / ctx.cancelled().
            if _STOP_NAME_RE.search(_node_name(sub.func)):
                return True
            # Forwarding it into a callee that polls it for us:
            # solve(..., should_stop=should_stop) / solve(f, should_stop).
            for kw in sub.keywords:
                if (
                    kw.arg is not None
                    and _STOP_NAME_RE.search(kw.arg)
                    and not _is_none_constant(kw.value)
                ):
                    return True
            if any(_STOP_NAME_RE.search(_node_name(arg)) for arg in sub.args):
                return True
        elif isinstance(sub, (ast.If, ast.IfExp, ast.While, ast.Assert)):
            if _expr_mentions_stop_name(sub.test):
                return True
        elif isinstance(sub, ast.comprehension):
            if any(_expr_mentions_stop_name(cond) for cond in sub.ifs):
                return True
    return False


@register_rule
class CancellationRule(Rule):
    """An unbounded ``while True`` loop in a solve path that never
    references ``should_stop``/cancel is exactly the PR 5 gap: one
    monster UNSAT query becomes uninterruptible without a process
    kill."""

    rule_id = "RPR002"
    title = "unbounded solve loops must poll should_stop/cancel"
    rationale = (
        "PR 5 closed the in-query cancellation gap by polling should_stop "
        "inside CDCLSolver.solve; new solve loops must not reopen it"
    )

    _SCOPE_PREFIXES = ("sat/", "pb/", "ilp/")
    _SCOPE_FILES = (
        "api/backends.py",
        "api/session.py",
        "api/pool.py",
        "coloring/sat_pipeline.py",
        "coloring/exact_dsatur.py",
        "coloring/coudert.py",
    )

    def applies_to(self, rel: str) -> bool:
        return rel.startswith(self._SCOPE_PREFIXES) or rel in self._SCOPE_FILES

    def check(self, source: SourceFile, resolver: ScopeResolver) -> Iterator[Finding]:
        for func in ast.walk(source.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _SOLVE_NAME_RE.search(func.name):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.While) or not _loop_is_unbounded(node):
                    continue
                if _subtree_polls_stop(node):
                    continue
                yield source.finding(
                    self.rule_id,
                    node,
                    "unbounded `while True` in solve path "
                    f"`{func.name}` never polls should_stop/cancel: one "
                    "long query becomes uninterruptible (thread "
                    "should_stop through and call or guard on it in the "
                    "loop — a bare mention of a stop-ish name no longer "
                    "counts)",
                )


# --------------------------------------------------------------------------
# RPR003 — determinism
# --------------------------------------------------------------------------


#: Package-relative locations whose code feeds solver decisions — the
#: deterministic scope shared by RPR003 (intra-file) and RPR010
#: (interprocedural taint).
DETERMINISTIC_SCOPE_PREFIXES = ("sat/", "symmetry/", "coloring/")
DETERMINISTIC_SCOPE_FILES = ("api/pool.py",)


def in_deterministic_scope(rel: str) -> bool:
    """True when ``rel`` is in the deterministic (differential-oracle)
    scope of the codebase."""
    return rel.startswith(DETERMINISTIC_SCOPE_PREFIXES) or (
        rel in DETERMINISTIC_SCOPE_FILES
    )


def _iter_order_sites(source: SourceFile) -> Iterator[Tuple[ast.expr, str]]:
    """(iterable expression, context description) pairs whose
    iteration order is observable."""
    for node in ast.walk(source.tree):
        if isinstance(node, ast.For):
            yield node.iter, "for loop"
        elif isinstance(node, ast.ListComp):
            for gen in node.generators:
                yield gen.iter, "list comprehension"
        elif isinstance(node, ast.GeneratorExp):
            parent = source.parent(node)
            if (
                isinstance(parent, ast.Call)
                and _call_name(parent) in ORDER_INSENSITIVE_CALLS
            ):
                continue  # sum(... for x in s) etc. cannot leak order
            for gen in node.generators:
                yield gen.iter, "generator expression"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("list", "tuple") and len(node.args) == 1:
                yield node.args[0], f"{node.func.id}() conversion"


def iter_nondet_sites(
    source: SourceFile, resolver: ScopeResolver
) -> Iterator[Tuple[ast.AST, str, str]]:
    """Every nondeterminism source in the file, regardless of rule scope.

    Yields ``(node, detail, message)`` triples: ``detail`` is a short
    label used in interprocedural taint witnesses ("iterates set
    `cands`", "`random.shuffle(...)`"), ``message`` the full RPR003
    diagnostic.  :class:`DeterminismRule` reports these inside the
    deterministic scope; fact extraction records them everywhere as
    RPR010 taint roots.
    """
    seen: Set[Tuple[int, str]] = set()
    for iterable, context in _iter_order_sites(source):
        key = (id(iterable), context)
        if key in seen:
            continue
        seen.add(key)
        if resolver.expr_is_set(iterable):
            yield (
                iterable,
                f"iterates set-typed `{_describe(iterable)}`",
                f"{context} iterates set-typed value "
                f"`{_describe(iterable)}` whose order is "
                "hash/insertion-dependent; sort at the iteration site "
                "(`sorted(...)`) so solver decisions are reproducible",
            )
        elif (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr == "keys"
            and not iterable.args
        ):
            yield (
                iterable,
                f"iterates `{_describe(iterable)}`",
                f"{context} iterates `{_describe(iterable)}`; iterate "
                "`sorted(...)` instead so the order is pinned by value, "
                "not by insertion history",
            )
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "random":
                bad = [a.name for a in node.names if a.name != "Random"]
                if bad:
                    yield (
                        node,
                        f"`from random import {', '.join(bad)}`",
                        f"`from random import {', '.join(bad)}` pulls in "
                        "the shared unseeded RNG; construct a seeded "
                        "random.Random instance instead",
                    )
            if node.module == "time":
                bad = [a.name for a in node.names if a.name == "time"]
                if bad:
                    yield (
                        node,
                        "`from time import time`",
                        "`from time import time` imports the wall clock "
                        "into solver-decision code; use time.monotonic() "
                        "for budgets and keep clocks out of decisions",
                    )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            value = node.func.value
            if not isinstance(value, ast.Name):
                continue
            if value.id == "random" and node.func.attr != "Random":
                yield (
                    node,
                    f"`random.{node.func.attr}(...)`",
                    f"`random.{node.func.attr}(...)` uses the shared "
                    "unseeded RNG: two runs (or two pool workers) "
                    "diverge; use a seeded random.Random instance",
                )
            elif value.id == "time" and node.func.attr == "time":
                yield (
                    node,
                    "`time.time()`",
                    "`time.time()` is the wall clock (NTP slew, DST); "
                    "use time.monotonic() for budgets and keep clocks "
                    "out of solver decisions",
                )


@register_rule
class DeterminismRule(Rule):
    """Solver-decision code feeding the differential oracle must be
    bit-for-bit reproducible: no hash/insertion-ordered iteration, no
    shared-state randomness, no wall clocks in decisions."""

    rule_id = "RPR003"
    title = "solver-decision code must iterate deterministically"
    rationale = (
        "the differential harness (pool == single-solver == scratch == "
        "exact-dsatur) silently rots when decision order drifts between "
        "runs or interpreter instances"
    )

    def applies_to(self, rel: str) -> bool:
        return in_deterministic_scope(rel)

    def check(self, source: SourceFile, resolver: ScopeResolver) -> Iterator[Finding]:
        for node, _detail, message in iter_nondet_sites(source, resolver):
            yield source.finding(self.rule_id, node, message)


# --------------------------------------------------------------------------
# RPR004 — frozen variables under incremental preprocessing
# --------------------------------------------------------------------------

_INCREMENTAL_SCOPE_RE = re.compile(r"incremental|session|pool", re.IGNORECASE)
_PREPROCESS_NAMES = ("preprocess", "preprocess_cnf")


@register_rule
class FrozenVarsRule(Rule):
    """``preprocess`` runs pure-literal and bounded variable
    elimination, which may resolve away exactly the variables an
    incremental caller later assumes (activation selectors) or
    re-mentions in growth clauses.  PR 5 made the preprocessor
    assumption-aware via ``frozen=``; incremental contexts must use
    it."""

    rule_id = "RPR004"
    title = "incremental preprocess calls must pass frozen="
    rationale = (
        "pure-literal elimination fixes pure activation selectors that "
        "per-query assumptions negate: UNSAT answers with empty cores"
    )

    def applies_to(self, rel: str) -> bool:
        return True

    def check(self, source: SourceFile, resolver: ScopeResolver) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) not in _PREPROCESS_NAMES:
                continue
            chain = source.scope_chain(node)
            if not any(_INCREMENTAL_SCOPE_RE.search(name) for name in chain):
                continue
            if any(kw.arg == "frozen" for kw in node.keywords):
                continue
            yield source.finding(
                self.rule_id,
                node,
                f"`{_call_name(node)}(...)` inside incremental context "
                f"`{'.'.join(chain)}` without `frozen=`: variable "
                "elimination may resolve away assumption selectors or "
                "growth variables (pass frozen=<vars the solver will "
                "assume or grow over>)",
            )


# --------------------------------------------------------------------------
# RPR005 — backend registry chokepoint
# --------------------------------------------------------------------------


@register_rule
class BackendRegistryRule(Rule):
    """Direct ``CDCLSolver(...)`` construction outside the solver layer
    pins call sites to the Python engine; routing through the factory /
    Backend registry is what lets the ROADMAP's compiled ``native``
    twin swap in and be differentially verified clause-for-clause."""

    rule_id = "RPR005"
    title = "construct solvers via the registry/factory, not CDCLSolver()"
    rationale = (
        "ROADMAP item 1: the native propagation core replaces the Python "
        "oracle behind the Backend registry; direct construction would "
        "silently keep call sites on the Python engine"
    )

    def applies_to(self, rel: str) -> bool:
        return not rel.startswith("sat/") and rel != "api/backends.py"

    def check(self, source: SourceFile, resolver: ScopeResolver) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) != "CDCLSolver":
                continue
            yield source.finding(
                self.rule_id,
                node,
                "direct CDCLSolver(...) construction outside sat/ and the "
                "backend registry; use repro.sat.new_solver(...) (the "
                "swappable factory) or route through the Backend registry",
            )


# --------------------------------------------------------------------------
# RPR006 — process-pool boundary
# --------------------------------------------------------------------------

_POOL_SUBMIT_ATTRS = frozenset(
    {
        "Process",
        "apply_async",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
    }
)


@register_rule
class PoolBoundaryRule(Rule):
    """Payloads submitted to process pools are pickled in the parent
    and unpickled in the worker: lambdas and closures fail at submit
    time at best, or silently capture parent-side state (open handles,
    live solvers) at worst.  Worker payloads must be top-level
    picklables, as ``repro.batch``'s ``_worker_entry`` is.

    Thread executors are held to the same bar even though the GIL would
    let closures through: every thread fan-out in this codebase is a
    process fan-out waiting to happen (the component pool made exactly
    that migration), and a closure at the submission boundary is the
    one thing that blocks it."""

    rule_id = "RPR006"
    title = "executor/pool payloads must be top-level picklables"
    rationale = (
        "repro.batch runs a process-per-attempt pool; a lambda or closure "
        "in the submission path dies in pickle, taking the fleet with it — "
        "and thread-executor closures block the thread->process migration"
    )

    def applies_to(self, rel: str) -> bool:
        return True

    def check(self, source: SourceFile, resolver: ScopeResolver) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            submit_name: Optional[str] = None
            if isinstance(func, ast.Attribute):
                if func.attr in _POOL_SUBMIT_ATTRS:
                    submit_name = func.attr
                elif (
                    func.attr in ("submit", "map")
                    and isinstance(func.value, ast.Name)
                ):
                    info = resolver.scope_for(node)
                    if info.kind_of(func.value.id) in (
                        KIND_PROCESS_EXECUTOR,
                        KIND_THREAD_EXECUTOR,
                    ):
                        submit_name = func.attr
            if submit_name is None:
                continue
            payloads: List[ast.expr] = list(node.args)
            payloads.extend(kw.value for kw in node.keywords if kw.value)
            for payload in payloads:
                yield from self._check_payload(source, resolver, node, payload, submit_name)

    def _check_payload(
        self,
        source: SourceFile,
        resolver: ScopeResolver,
        call: ast.Call,
        payload: ast.expr,
        submit_name: str,
    ) -> Iterator[Finding]:
        for sub in ast.walk(payload):
            if isinstance(sub, ast.Lambda):
                yield source.finding(
                    self.rule_id,
                    call,
                    f"lambda passed into pool/executor `{submit_name}(...)`: "
                    "lambdas do not pickle — hoist it to a module-level "
                    "function so the fan-out can move to processes",
                )
            elif isinstance(sub, ast.Name):
                info = resolver.scope_for(call)
                if info.kind_of(sub.id) == KIND_NESTED_FUNC:
                    yield source.finding(
                        self.rule_id,
                        call,
                        f"nested function `{sub.id}` passed into "
                        f"pool/executor `{submit_name}(...)`: closures do "
                        "not pickle — hoist it to module level and pass "
                        "state explicitly",
                    )


# --------------------------------------------------------------------------
# RPR007 — deadline arithmetic
# --------------------------------------------------------------------------

#: Statement text that marks a clock expression as *deadline* arithmetic
#: rather than elapsed-time measurement (`seconds = monotonic() - t0`).
_DEADLINE_WORD_RE = re.compile(
    r"time_limit|deadline|timeout|budget|kill_at|remaining|expir", re.IGNORECASE
)


@register_rule
class DeadlineArithmeticRule(Rule):
    """Every stage that hand-rolls ``time.monotonic()`` expiry checks
    reinvents — and subtly diverges on — the same three decisions:
    what ``None`` means, whether a negative remainder clamps to zero,
    and whose clock is consulted (the fault harness can only skew the
    :mod:`repro.resilience` clock seam).  PR 7 unified them behind
    ``Deadline``; raw deadline arithmetic outside ``resilience/``
    re-opens the divergence.  Pure elapsed-time *measurement*
    (``seconds = time.monotonic() - t0``) is deliberately allowed."""

    rule_id = "RPR007"
    title = "deadline arithmetic must go through resilience.Deadline"
    rationale = (
        "PR 7 unified expiry semantics (None = unbounded, clamped "
        "remaining, skewable clock seam) in repro.resilience.Deadline; "
        "hand-rolled monotonic() comparisons drift from them and are "
        "invisible to the fault-injection clock"
    )

    def applies_to(self, rel: str) -> bool:
        # The Deadline implementation itself is the one place allowed
        # to touch the raw clock.
        return not rel.startswith("resilience/")

    def _is_clock_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("time", "monotonic")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
        )

    def check(self, source: SourceFile, resolver: ScopeResolver) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not self._is_clock_call(node):
                continue
            in_compare = False
            in_binop = False
            stmt: Optional[ast.stmt] = None
            current = source.parent(node)
            while current is not None:
                if isinstance(current, ast.Compare):
                    in_compare = True
                elif isinstance(current, ast.BinOp):
                    in_binop = True
                if isinstance(current, ast.stmt):
                    stmt = current
                    break
                current = source.parent(current)
            clock = _describe(node)
            if in_compare:
                yield source.finding(
                    self.rule_id,
                    node,
                    f"`{clock}` compared against a bound is hand-rolled "
                    "deadline arithmetic; build a "
                    "repro.resilience.Deadline and poll "
                    "`deadline.expired()` instead",
                )
            elif in_binop and stmt is not None and _DEADLINE_WORD_RE.search(
                _describe(stmt)
            ):
                yield source.finding(
                    self.rule_id,
                    node,
                    f"`{clock}` feeds budget/deadline arithmetic; use "
                    "repro.resilience.Deadline (`after`/`remaining`/"
                    "`child`) so expiry semantics and the fault-harness "
                    "clock seam stay unified",
                )
