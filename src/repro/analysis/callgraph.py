"""Project call graph assembled from per-module facts.

The graph is intentionally conservative (docs/callgraph.md spells out
every limit): an edge exists only when a call target resolves to a
*unique* analyzed function — via same-scope nested defs, same-module
definitions, the module's imports (re-export chains are chased through
``__init__`` modules), ``self.method`` on the defining class, or, for
attribute calls on arbitrary objects, a method name defined by exactly
one class in the whole project.  Ambiguous or external targets produce
no edge, so the interprocedural rules under-approximate rather than
guess.

Three whole-program properties are computed by fixpoint over the
edges:

- ``loop_bearing``: the function contains a ``while True`` in its own
  scope, or calls (transitively) one that does — the "can block
  indefinitely" marker RPR008/RPR009 gate on;
- ``tainted``: the function contains a nondeterminism source (RPR003's
  sites, recorded everywhere by fact extraction), or calls
  (transitively) one that does — with a witness chain to the root;
- ``reachable``: on a path from a public solve entry point
  (stop-accepting functions whose name matches the solve pattern, plus
  ``run`` — the Backend protocol method).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .facts import (
    SOLVE_ENTRY_RE,
    CallSite,
    FunctionFacts,
    ModuleFacts,
)

#: Resolution chases import re-export chains at most this deep.
_MAX_CHASE = 8


@dataclass(frozen=True)
class Node:
    """One analyzed function in the project graph."""

    key: str  # "<module>:<local qname>", e.g. "repro.api.session:Session.decide"
    module: str
    rel: str
    path: str
    facts: FunctionFacts

    @property
    def display(self) -> str:
        return f"{self.facts.qname} ({self.rel})"


@dataclass(frozen=True)
class Edge:
    """One resolved call: ``caller`` invokes ``callee`` at ``site``."""

    caller: str
    callee: str
    site: CallSite
    nested: bool  # callee is a closure defined inside the caller


class CallGraph:
    """The assembled project graph plus the derived whole-program sets."""

    def __init__(self, modules: Sequence[ModuleFacts]) -> None:
        self.modules: Dict[str, ModuleFacts] = {}
        for facts in modules:
            self.modules[facts.module] = facts
        self.nodes: Dict[str, Node] = {}
        #: method name -> keys of every class method with that name
        self._methods: Dict[str, List[str]] = {}
        #: (module, class) -> method name -> key
        self._class_methods: Dict[Tuple[str, str], Dict[str, str]] = {}
        for facts in self.modules.values():
            for func in facts.functions:
                key = f"{facts.module}:{func.qname}"
                self.nodes[key] = Node(
                    key=key,
                    module=facts.module,
                    rel=facts.rel,
                    path=facts.path,
                    facts=func,
                )
                if func.class_name and not func.parent:
                    self._methods.setdefault(func.name, []).append(key)
                    self._class_methods.setdefault(
                        (facts.module, func.class_name), {}
                    )[func.name] = key
        self.edges: List[Edge] = []
        self.unresolved_calls = 0
        self._build_edges()
        self._by_caller: Dict[str, List[Edge]] = {}
        for edge in self.edges:
            self._by_caller.setdefault(edge.caller, []).append(edge)
        self.loop_bearing: Set[str] = self._propagate(
            {k for k, n in self.nodes.items() if n.facts.has_unbounded_loop}
        )
        self.taint_witness: Dict[str, str] = self._propagate_taint()
        self.entry_points: Set[str] = {
            key
            for key, node in self.nodes.items()
            if self._accepts_stop_effective(key)
            and SOLVE_ENTRY_RE.search(node.facts.name)
        }
        self.reachable: Set[str] = self._forward_reachable(self.entry_points)

    # ------------------------------------------------------------ queries
    def tainted(self, key: str) -> bool:
        return key in self.taint_witness

    def callees_of(self, key: str) -> List[Edge]:
        return self._by_caller.get(key, [])

    def accepts_stop_effective(self, key: str) -> bool:
        return self._accepts_stop_effective(key)

    def accepts_deadline_effective(self, key: str) -> bool:
        return self._accepts_effective(key, "accepts_deadline")

    def _accepts_stop_effective(self, key: str) -> bool:
        """The function (or an enclosing function whose scope it
        captures) declares a stop parameter."""
        return self._accepts_effective(key, "accepts_stop")

    def _accepts_effective(self, key: str, attribute: str) -> bool:
        node = self.nodes.get(key)
        while node is not None:
            if getattr(node.facts, attribute):
                return True
            if not node.facts.parent:
                return False
            node = self.nodes.get(f"{node.module}:{node.facts.parent}")
        return False

    # ----------------------------------------------------------- assembly
    def _build_edges(self) -> None:
        by_caller: Set[Tuple[str, str, int, int]] = set()
        for facts in self.modules.values():
            for func in facts.functions:
                caller_key = f"{facts.module}:{func.qname}"
                for site in func.calls:
                    callee_key = self._resolve(facts, func, site)
                    if callee_key is None:
                        self.unresolved_calls += 1
                        continue
                    nested = self._is_nested_in(callee_key, caller_key)
                    dedup = (caller_key, callee_key, site.line, site.col)
                    if dedup in by_caller:
                        continue
                    by_caller.add(dedup)
                    self.edges.append(
                        Edge(
                            caller=caller_key,
                            callee=callee_key,
                            site=site,
                            nested=nested,
                        )
                    )

    def _is_nested_in(self, callee_key: str, caller_key: str) -> bool:
        callee = self.nodes.get(callee_key)
        caller = self.nodes.get(caller_key)
        if callee is None or caller is None or callee.module != caller.module:
            return False
        parent = callee.facts.parent
        while parent:
            if parent == caller.facts.qname:
                return True
            node = self.nodes.get(f"{callee.module}:{parent}")
            if node is None:
                return False
            parent = node.facts.parent
        return False

    def _resolve(
        self, facts: ModuleFacts, func: FunctionFacts, site: CallSite
    ) -> Optional[str]:
        if site.kind == "name":
            return self._resolve_name(facts, func, site.target)
        if site.kind == "self":
            key = self._class_methods.get(
                (facts.module, func.class_name), {}
            ).get(site.target)
            if key is not None:
                return key
            return self._resolve_unique_method(site.target)
        if site.kind == "dotted":
            return self._resolve_dotted(facts, site.target)
        if site.kind == "method":
            return self._resolve_unique_method(site.target)
        return None

    def _resolve_name(
        self, facts: ModuleFacts, func: Optional[FunctionFacts], name: str
    ) -> Optional[str]:
        # Innermost first: a nested def shadows module-level names.
        if func is not None:
            prefix = func.qname
            while prefix:
                key = f"{facts.module}:{prefix}.{name}"
                if key in self.nodes:
                    return key
                node = self.nodes.get(f"{facts.module}:{prefix}")
                prefix = node.facts.parent if node is not None else ""
        return self._resolve_symbol(facts.module, name, depth=0)

    def _resolve_symbol(
        self, module: str, name: str, depth: int
    ) -> Optional[str]:
        """``name`` looked up in ``module``: a function, a class
        constructor, or an import chased transitively."""
        if depth > _MAX_CHASE:
            return None
        facts = self.modules.get(module)
        if facts is None:
            return None
        key = f"{module}:{name}"
        if key in self.nodes:
            return key
        if name in facts.classes:
            init_key = f"{module}:{name}.__init__"
            return init_key if init_key in self.nodes else None
        for imp in facts.imports:
            if imp.name != name:
                continue
            if imp.attr:
                resolved = self._resolve_symbol(imp.module, imp.attr, depth + 1)
                if resolved is not None:
                    return resolved
                # `from a import b` can name a submodule a.b, not a symbol.
                continue
            return None  # bare module binding, not callable
        return None

    def _resolve_dotted(
        self, facts: ModuleFacts, dotted: str
    ) -> Optional[str]:
        parts = dotted.split(".")
        base, attr = parts[:-1], parts[-1]
        # The chain's base may be a local alias for a module (via
        # `import x.y as z` / `from x import y`) or a literal dotted
        # module path; try the longest matching module prefix.
        candidates: List[str] = []
        for imp in facts.imports:
            if imp.name == base[0]:
                if imp.attr:
                    candidates.append(".".join([imp.module, imp.attr, *base[1:]]))
                else:
                    candidates.append(".".join([imp.module, *base[1:]]))
        candidates.append(".".join(base))
        for candidate in candidates:
            if candidate in self.modules:
                resolved = self._resolve_symbol(candidate, attr, depth=0)
                if resolved is not None:
                    return resolved
        # Not a module path (e.g. `solver.solve(...)` on a local object):
        # fall back to unique-method-name resolution.
        return self._resolve_unique_method(attr)

    def _resolve_unique_method(self, name: str) -> Optional[str]:
        candidates = self._methods.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -------------------------------------------------------- propagation
    def _callers_index(self) -> Dict[str, List[Edge]]:
        by_callee: Dict[str, List[Edge]] = {}
        for edge in self.edges:
            by_callee.setdefault(edge.callee, []).append(edge)
        return by_callee

    def _propagate(self, roots: Set[str]) -> Set[str]:
        """Close ``roots`` under "caller of a member is a member"."""
        by_callee = self._callers_index()
        marked = set(roots)
        work = list(roots)
        while work:
            current = work.pop()
            for edge in by_callee.get(current, []):
                if edge.caller not in marked:
                    marked.add(edge.caller)
                    work.append(edge.caller)
        return marked

    def _propagate_taint(self) -> Dict[str, str]:
        """Taint closure with witness chains.

        The witness of a root is its own nondet detail; the witness of
        a propagated member is ``callee display -> callee's witness``,
        so a finding can show the path to the root cause.
        """
        witness: Dict[str, str] = {}
        for key, node in self.nodes.items():
            if node.facts.nondet:
                root = node.facts.nondet[0]
                witness[key] = f"{root.detail} at {node.rel}:{root.line}"
        by_callee = self._callers_index()
        work = list(witness)
        while work:
            current = work.pop()
            for edge in by_callee.get(current, []):
                if edge.caller in witness:
                    continue
                callee_node = self.nodes[current]
                witness[edge.caller] = (
                    f"{callee_node.facts.qname} ({callee_node.rel}) -> "
                    f"{witness[current]}"
                )
                work.append(edge.caller)
        return witness

    def _forward_reachable(self, roots: Set[str]) -> Set[str]:
        by_caller: Dict[str, List[Edge]] = {}
        for edge in self.edges:
            by_caller.setdefault(edge.caller, []).append(edge)
        seen = set(roots)
        work = list(roots)
        while work:
            current = work.pop()
            for edge in by_caller.get(current, []):
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    work.append(edge.callee)
        return seen

    # ------------------------------------------------------------- export
    def to_dict(self) -> Dict[str, object]:
        """Deterministic JSON document (the ``--graph`` export)."""
        nodes = []
        for key in sorted(self.nodes):
            node = self.nodes[key]
            nodes.append(
                {
                    "key": key,
                    "rel": node.rel,
                    "line": node.facts.line,
                    "accepts_stop": node.facts.accepts_stop,
                    "accepts_deadline": node.facts.accepts_deadline,
                    "accepts_time_limit": node.facts.accepts_time_limit,
                    "has_unbounded_loop": node.facts.has_unbounded_loop,
                    "loop_bearing": key in self.loop_bearing,
                    "tainted": key in self.taint_witness,
                    "entry_point": key in self.entry_points,
                    "reachable_from_entry": key in self.reachable,
                }
            )
        edges = [
            {
                "caller": edge.caller,
                "callee": edge.callee,
                "line": edge.site.line,
                "passes_stop": edge.site.passes_stop,
                "passes_deadline": edge.site.passes_deadline,
                "nested": edge.nested,
            }
            for edge in sorted(
                self.edges, key=lambda e: (e.caller, e.site.line, e.callee)
            )
        ]
        return {
            "modules": sorted(self.modules),
            "nodes": nodes,
            "edges": edges,
            "unresolved_calls": self.unresolved_calls,
        }


def build_call_graph(modules: Iterable[ModuleFacts]) -> CallGraph:
    """Assemble the project graph from extracted (or cached) facts."""
    return CallGraph(list(modules))
