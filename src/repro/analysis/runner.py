"""File collection and rule execution: point :func:`run` at one or
more paths and it parses every ``.py`` file beneath them, runs the
applicable rules and returns per-file reports.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from . import rules as _rules  # noqa: F401  (import registers the rules)
from .core import FileReport, Rule, SourceFile, check_file, get_rules, package_rel

#: Directories never worth descending into.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "build", "dist", ".mypy_cache"}
)


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    out: List[Path] = []
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.append(path)
            continue
        for sub in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in sub.parts):
                continue
            out.append(sub)
    return sorted(set(out))


def iter_reports(
    files: Sequence[Path], rules: Sequence[Rule]
) -> Iterator[FileReport]:
    for path in files:
        # The checker itself is exempt: rule sources quote the very
        # patterns they hunt for.
        rel = package_rel(path)
        if rel.startswith("analysis/"):
            continue
        try:
            source = SourceFile.load(path, rel)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            raise RuntimeError(f"cannot parse {path}: {exc}") from exc
        yield check_file(source, rules)


def run(
    paths: Sequence[Path], rule_ids: Optional[Sequence[str]] = None
) -> List[FileReport]:
    """Check ``paths`` with the selected rules (all rules by default)."""
    rules = get_rules(rule_ids)
    files = collect_files(paths)
    return list(iter_reports(files, rules))


def has_findings(reports: Sequence[FileReport]) -> bool:
    return any(report.findings for report in reports)
