"""File collection and whole-program rule execution.

:func:`run_project` is the analyzer's engine: it collects every
``.py`` file under the given paths, extracts per-module facts (from
the incremental cache when the content hash matches, in parallel with
``jobs > 1``), runs the per-file rules, assembles the project call
graph, runs the interprocedural rules over it, and applies suppression
comments to the merged findings.  :func:`run` is the historical
entry point returning just the per-file results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from . import dataflow as _dataflow  # noqa: F401  (registers project rules)
from . import rules as _rules  # noqa: F401  (import registers the rules)
from .cache import FactsCache, FileEntry
from .callgraph import CallGraph, build_call_graph
from .core import (
    Finding,
    Rule,
    SourceFile,
    apply_suppressions,
    known_rule_ids,
    meta_findings,
    package_rel,
    run_file_rules,
    select_rules,
)
from .facts import FACTS_VERSION, content_hash, extract_module_facts

#: Directories never worth descending into.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "build", "dist", ".mypy_cache"}
)


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    out: List[Path] = []
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.append(path)
            continue
        for sub in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in sub.parts):
                continue
            out.append(sub)
    return sorted(set(out))


@dataclass
class FileResult:
    """Post-suppression findings of one analyzed file."""

    path: str
    rel: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    from_cache: bool = False


@dataclass
class RunStats:
    """One run's cost/coverage summary (the ``make analyze`` one-liner)."""

    files: int = 0
    extracted: int = 0
    cached: int = 0
    rules: int = 0
    findings: int = 0
    suppressed: int = 0
    seconds: float = 0.0


@dataclass
class ProjectReport:
    """Everything one analyzer run produced."""

    files: List[FileResult]
    graph: CallGraph
    stats: RunStats


def _extract_entry(
    path: Path, rel: str, digest: str, rules: Sequence[Rule]
) -> FileEntry:
    """Parse one file and produce its cacheable extraction record."""
    try:
        source = SourceFile.load(path, rel)
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        raise RuntimeError(f"cannot parse {path}: {exc}") from exc
    return FileEntry(
        rel=rel,
        content_hash=digest,
        facts=extract_module_facts(source),
        raw_findings=run_file_rules(source, rules),
        suppressions=list(source.suppressions),
    )


def _extract_worker(
    payload: Tuple[str, str, str, Optional[Tuple[str, ...]]],
) -> Tuple[str, Dict[str, object]]:
    """Process-pool entry: re-derives the rule objects in the worker
    (rule instances do not cross the pickle boundary) and returns a
    JSON-ready entry."""
    path_str, rel, digest, rule_ids = payload
    rules, _ = select_rules(list(rule_ids) if rule_ids is not None else None)
    entry = _extract_entry(Path(path_str), rel, digest, rules)
    return path_str, entry.to_dict()


def _rules_key(file_rules: Sequence[Rule]) -> str:
    return f"v{FACTS_VERSION}:" + ",".join(r.rule_id for r in file_rules)


def run_project(
    paths: Sequence[Path],
    rule_ids: Optional[Sequence[str]] = None,
    *,
    cache_dir: Optional[Path] = None,
    jobs: int = 1,
) -> ProjectReport:
    """Run the full analyzer (per-file + interprocedural) over ``paths``."""
    started = time.monotonic()
    file_rules, project_rules = select_rules(rule_ids)
    files = collect_files(paths)
    cache: Optional[FactsCache] = None
    if cache_dir is not None:
        cache = FactsCache(cache_dir, _rules_key(file_rules))

    entries: Dict[str, FileEntry] = {}
    lines_by_path: Dict[str, List[str]] = {}
    pending: List[Tuple[Path, str, str]] = []  # (path, rel, digest)
    for path in files:
        key = str(path)
        try:
            data = path.read_bytes()
            text = data.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise RuntimeError(f"cannot parse {path}: {exc}") from exc
        lines_by_path[key] = text.splitlines()
        digest = content_hash(data)
        hit = cache.get(key, digest) if cache is not None else None
        if hit is not None:
            entries[key] = hit
        else:
            pending.append((path, package_rel(path), digest))

    stats = RunStats(
        files=len(files),
        extracted=len(pending),
        cached=len(files) - len(pending),
        rules=len(file_rules) + len(project_rules),
    )

    pending_keys = {str(path) for path, _, _ in pending}
    if pending:
        for key, entry in _extract_all(pending, rule_ids, file_rules, jobs):
            entries[key] = entry
            if cache is not None:
                cache.put(key, entry)
    if cache is not None:
        cache.prune(tuple(entries))
        cache.save()

    graph = build_call_graph(
        entries[key].facts for key in sorted(entries)
    )

    project_raw: Dict[str, List[Finding]] = {}
    for rule in project_rules:
        for finding in rule.check_project(graph):
            lines = lines_by_path.get(finding.path, [])
            if 1 <= finding.line <= len(lines):
                finding = replace(
                    finding, source_line=lines[finding.line - 1].rstrip()
                )
            project_raw.setdefault(finding.path, []).append(finding)

    known = known_rule_ids()
    results: List[FileResult] = []
    for key in sorted(entries):
        entry = entries[key]
        lines = lines_by_path.get(key, [])

        def line_text(lineno: int, _lines: List[str] = lines) -> str:
            if 1 <= lineno <= len(_lines):
                return _lines[lineno - 1]
            return ""

        raw = list(entry.raw_findings)
        raw.extend(project_raw.get(key, []))
        raw.extend(meta_findings(entry.suppressions, key, line_text, known))
        kept, suppressed = apply_suppressions(raw, entry.suppressions)
        results.append(
            FileResult(
                path=key,
                rel=entry.rel,
                findings=kept,
                suppressed=suppressed,
                from_cache=key not in pending_keys,
            )
        )

    stats.findings = sum(len(r.findings) for r in results)
    stats.suppressed = sum(len(r.suppressed) for r in results)
    stats.seconds = time.monotonic() - started
    return ProjectReport(files=results, graph=graph, stats=stats)


def _extract_all(
    pending: Sequence[Tuple[Path, str, str]],
    rule_ids: Optional[Sequence[str]],
    file_rules: Sequence[Rule],
    jobs: int,
) -> List[Tuple[str, FileEntry]]:
    if jobs <= 1 or len(pending) < 2:
        return [
            (str(path), _extract_entry(path, rel, digest, file_rules))
            for path, rel, digest in pending
        ]
    import multiprocessing

    rule_id_tuple = tuple(rule_ids) if rule_ids is not None else None
    payloads = [
        (str(path), rel, digest, rule_id_tuple)
        for path, rel, digest in pending
    ]
    out: List[Tuple[str, FileEntry]] = []
    with multiprocessing.Pool(processes=jobs) as pool:
        for path_str, entry_dict in pool.map(_extract_worker, payloads):
            out.append((path_str, FileEntry.from_dict(entry_dict)))
    return out


def run(
    paths: Sequence[Path], rule_ids: Optional[Sequence[str]] = None
) -> List[FileResult]:
    """Check ``paths`` with the selected rules (all rules by default)."""
    return run_project(paths, rule_ids).files


def has_findings(reports: Sequence[FileResult]) -> bool:
    return any(report.findings for report in reports)
