"""Per-module fact extraction for the whole-program analyzer.

One :class:`ModuleFacts` summarizes everything the interprocedural
layer needs to know about a file *without re-reading it*: the functions
it defines (with parameter signatures classified as stop-/deadline-
carrying), the import-resolved calls each function makes (with whether
the call forwards a stop callable or a deadline), loop markers
(``while True`` in the function's own scope), and nondeterminism
sources (the same sites RPR003 hunts, recorded everywhere as RPR010
taint roots).

Facts are plain frozen dataclasses with a lossless JSON round-trip
(:func:`module_facts_to_dict` / :func:`module_facts_from_dict`), which
is what makes the incremental cache (:mod:`repro.analysis.cache`) and
``--jobs`` parallel extraction possible: a warm run rebuilds the call
graph from cached facts without parsing a single unchanged file.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .core import ScopeResolver, SourceFile, _as_int

#: Bump when extraction logic changes: cached facts from older versions
#: are discarded, not misinterpreted.
FACTS_VERSION = 1

#: Function names that mark public solve entry points for RPR008's
#: reachability cone (plus exact ``run`` — the Backend protocol method).
SOLVE_ENTRY_RE = re.compile(
    r"solve|minimi|optimi|search|descent|decide|probe|chromatic|^run$",
    re.IGNORECASE,
)

#: Parameter names/annotations that carry a cancellation channel.
STOP_PARAM_RE = re.compile(r"should_stop|run_context|cancel|^ctx$|^stop$")
STOP_ANNOTATION_RE = re.compile(r"RunContext|ShouldStop")
#: Names whose appearance in a call argument means the cancellation
#: channel is forwarded.
STOP_FORWARD_RE = re.compile(r"should_stop|run_context|cancel|^ctx$|^stop$")

#: Parameter names/annotations that carry a deadline or budget object.
DEADLINE_PARAM_RE = re.compile(r"deadline|budget")
DEADLINE_ANNOTATION_RE = re.compile(r"\bDeadline\b|\bBudget\b")
#: Callees can also receive time as a plain float bound.
TIME_LIMIT_PARAM_RE = re.compile(r"time_limit|deadline|budget")
#: Names whose appearance in a call argument means a deadline (or a
#: share/child/remaining slice of one) flows into the callee.
DEADLINE_FORWARD_RE = re.compile(r"deadline|budget|time_limit")

#: First path segments of trees analyzed alongside the package — their
#: modules keep the tree name as the package root (``scripts.check_bench``).
_NON_PACKAGE_ROOTS = frozenset({"scripts", "benchmarks", "examples", "tests"})


@dataclass(frozen=True)
class NondetFact:
    """One nondeterminism source inside a function (RPR010 taint root)."""

    detail: str
    line: int


@dataclass(frozen=True)
class CallSite:
    """One call made by a function, with forwarding classification.

    ``kind`` is how the callee was named at the call site:

    - ``name``: a bare name (``helper(...)``)
    - ``dotted``: a dotted chain rooted at a name (``mod.helper(...)``)
    - ``self``: a method on the caller's own class (``self.m(...)``)
    - ``method``: an attribute call on a non-name object
      (``self._search.solve_k(...)``) — resolvable only by unique
      method name
    """

    kind: str
    target: str
    line: int
    col: int
    passes_stop: bool
    passes_deadline: bool


@dataclass(frozen=True)
class FunctionFacts:
    """Summary of one function (or method, or nested function)."""

    name: str
    qname: str  # module-local: "Class.method", "outer.inner", "func"
    class_name: str  # "" for free functions
    parent: str  # qname of the enclosing function, "" if top-level
    line: int
    params: Tuple[str, ...]
    accepts_stop: bool
    accepts_deadline: bool
    accepts_time_limit: bool
    has_unbounded_loop: bool
    nondet: Tuple[NondetFact, ...]
    calls: Tuple[CallSite, ...]


@dataclass(frozen=True)
class ImportFact:
    """One name binding created by an import statement.

    ``attr`` is empty for module imports (``import a.b as x``) and the
    imported symbol name for from-imports (``from a.b import c``).
    """

    name: str
    module: str
    attr: str


@dataclass(frozen=True)
class ModuleFacts:
    """Everything the call-graph layer needs from one file."""

    module: str  # dotted module name, e.g. "repro.api.session"
    rel: str  # package-relative path, e.g. "api/session.py"
    path: str  # path as given on the command line
    is_package: bool  # True for __init__.py
    imports: Tuple[ImportFact, ...]
    functions: Tuple[FunctionFacts, ...]
    classes: Tuple[str, ...]


def content_hash(data: bytes) -> str:
    """The cache key of one file's content."""
    return hashlib.sha256(data).hexdigest()


def module_name_for(rel: str) -> Tuple[str, bool]:
    """(dotted module name, is_package) for a package-relative path.

    Files under the ``repro`` package get the ``repro.`` prefix; files
    from sibling trees (``scripts/``, ``benchmarks/``, ``examples/``)
    keep the tree name as their package root.
    """
    parts = rel.split("/")
    is_package = parts[-1] == "__init__.py"
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if is_package:
        parts = parts[:-1]
    if not parts or parts[0] not in _NON_PACKAGE_ROOTS:
        parts = ["repro", *parts]
    return ".".join(parts), is_package


# --------------------------------------------------------------------------
# Extraction
# --------------------------------------------------------------------------


def _param_names(args: ast.arguments) -> List[ast.arg]:
    out: List[ast.arg] = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    if args.vararg is not None:
        out.append(args.vararg)
    if args.kwarg is not None:
        out.append(args.kwarg)
    return out


def _annotation_text(annotation: Optional[ast.expr]) -> str:
    if annotation is None:
        return ""
    try:
        return ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return ""


def _flatten_attribute(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None when the base is not a name."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return None


def _is_none_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _call_forwards(call: ast.Call, name_re: "re.Pattern[str]") -> bool:
    """True when any argument of ``call`` threads a matching channel.

    A keyword whose *name* matches counts only with a non-None value
    (``should_stop=None`` is an explicit drop, not a forward); any
    argument whose expression mentions a matching name or attribute
    counts (``ctx.cancelled if ctx.cancel else None`` forwards ``ctx``).
    """
    for kw in call.keywords:
        if (
            kw.arg is not None
            and name_re.search(kw.arg)
            and not _is_none_constant(kw.value)
        ):
            return True
    exprs: List[ast.expr] = list(call.args)
    exprs.extend(kw.value for kw in call.keywords)
    for expr in exprs:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and name_re.search(sub.id):
                return True
            if isinstance(sub, ast.Attribute) and name_re.search(sub.attr):
                return True
    return False


def _classify_call(call: ast.Call) -> Optional[Tuple[str, str]]:
    """(kind, target) for a call site, or None for unresolvable shapes."""
    func = call.func
    if isinstance(func, ast.Name):
        return "name", func.id
    if isinstance(func, ast.Attribute):
        chain = _flatten_attribute(func)
        if chain is not None:
            if chain[0] == "self":
                if len(chain) == 2:
                    return "self", chain[1]
                return "method", chain[-1]
            return "dotted", ".".join(chain)
        return "method", func.attr
    return None  # call of a call, subscript, lambda, ...


def _walk_own_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s body without entering nested def/class scopes
    (lambdas stay in the enclosing scope)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _iter_function_defs(
    tree: ast.Module,
) -> Iterator[Tuple["ast.FunctionDef | ast.AsyncFunctionDef", str, str, str]]:
    """(def node, local qname, class name, parent function qname) for
    every function in the module: top-level, methods, and nested defs
    (including defs under ``if``/``try`` blocks inside a scope)."""

    def visit(
        node: ast.AST, prefix: str, class_name: str, parent: str
    ) -> Iterator[Tuple["ast.FunctionDef | ast.AsyncFunctionDef", str, str, str]]:
        for child in _walk_own_scope(node):
            if isinstance(child, _FuncDef):
                qname = f"{prefix}{child.name}"
                yield child, qname, class_name, parent
                yield from visit(child, f"{qname}.", class_name, qname)
            elif isinstance(child, ast.ClassDef) and not parent:
                yield from visit(child, f"{child.name}.", child.name, parent)

    yield from visit(tree, "", "", "")


def extract_module_facts(source: SourceFile) -> ModuleFacts:
    """Extract all whole-program facts from one parsed file."""
    module, is_package = module_name_for(source.rel)
    resolver = ScopeResolver(source)

    imports: List[ImportFact] = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports.append(ImportFact(name=local, module=target, attr=""))
                if alias.asname is None and "." in alias.name:
                    # `import a.b.c` also makes the full dotted path
                    # addressable; record it for longest-prefix lookup.
                    imports.append(
                        ImportFact(name=alias.name, module=alias.name, attr="")
                    )
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from_import(module, is_package, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports.append(
                    ImportFact(name=local, module=base, attr=alias.name)
                )

    # Map nondeterminism sites to their enclosing function.
    from .rules import iter_nondet_sites  # deferred: rules imports core only

    def_index: Dict[int, str] = {}
    functions: List[FunctionFacts] = []
    defs = list(_iter_function_defs(source.tree))
    for func, qname, _class_name, _parent in defs:
        def_index[id(func)] = qname

    nondet_by_func: Dict[str, List[NondetFact]] = {}
    for node, detail, _message in iter_nondet_sites(source, resolver):
        current: Optional[ast.AST] = node
        owner = ""
        while current is not None:
            if id(current) in def_index:
                owner = def_index[id(current)]
                break
            current = source.parent(current)
        if owner:
            nondet_by_func.setdefault(owner, []).append(
                NondetFact(detail=detail, line=getattr(node, "lineno", 1))
            )

    classes = tuple(
        node.name
        for node in ast.iter_child_nodes(source.tree)
        if isinstance(node, ast.ClassDef)
    )

    for func, qname, class_name, parent in defs:
        params = _param_names(func.args)
        accepts_stop = False
        accepts_deadline = False
        accepts_time_limit = False
        for arg in params:
            annotation = _annotation_text(arg.annotation)
            if STOP_PARAM_RE.search(arg.arg) or STOP_ANNOTATION_RE.search(
                annotation
            ):
                accepts_stop = True
            if DEADLINE_PARAM_RE.search(arg.arg) or (
                DEADLINE_ANNOTATION_RE.search(annotation)
            ):
                accepts_deadline = True
            if TIME_LIMIT_PARAM_RE.search(arg.arg):
                accepts_time_limit = True

        has_unbounded_loop = any(
            isinstance(node, ast.While)
            and isinstance(node.test, ast.Constant)
            and bool(node.test.value)
            for node in _walk_own_scope(func)
        )

        calls: List[CallSite] = []
        for node in _walk_own_scope(func):
            if not isinstance(node, ast.Call):
                continue
            classified = _classify_call(node)
            if classified is None:
                continue
            kind, target = classified
            calls.append(
                CallSite(
                    kind=kind,
                    target=target,
                    line=node.lineno,
                    col=node.col_offset,
                    passes_stop=_call_forwards(node, STOP_FORWARD_RE),
                    passes_deadline=_call_forwards(node, DEADLINE_FORWARD_RE),
                )
            )

        functions.append(
            FunctionFacts(
                name=func.name,
                qname=qname,
                class_name=class_name,
                parent=parent,
                line=func.lineno,
                params=tuple(arg.arg for arg in params),
                accepts_stop=accepts_stop,
                accepts_deadline=accepts_deadline,
                accepts_time_limit=accepts_time_limit,
                has_unbounded_loop=has_unbounded_loop,
                nondet=tuple(nondet_by_func.get(qname, [])),
                calls=tuple(calls),
            )
        )

    return ModuleFacts(
        module=module,
        rel=source.rel,
        path=str(source.path),
        is_package=is_package,
        imports=tuple(imports),
        functions=tuple(functions),
        classes=classes,
    )


def _resolve_from_import(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute dotted module a from-import pulls names out of."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    base = parts if is_package else parts[:-1]
    drop = node.level - 1
    if drop > len(base):
        return None
    if drop:
        base = base[:-drop]
    if node.module:
        return ".".join([*base, node.module]) if base else node.module
    return ".".join(base) if base else None


# --------------------------------------------------------------------------
# JSON round-trip (for the incremental cache and --jobs workers)
# --------------------------------------------------------------------------


def module_facts_to_dict(facts: ModuleFacts) -> Dict[str, object]:
    return {
        "module": facts.module,
        "rel": facts.rel,
        "path": facts.path,
        "is_package": facts.is_package,
        "imports": [
            {"name": i.name, "module": i.module, "attr": i.attr}
            for i in facts.imports
        ],
        "classes": list(facts.classes),
        "functions": [
            {
                "name": f.name,
                "qname": f.qname,
                "class_name": f.class_name,
                "parent": f.parent,
                "line": f.line,
                "params": list(f.params),
                "accepts_stop": f.accepts_stop,
                "accepts_deadline": f.accepts_deadline,
                "accepts_time_limit": f.accepts_time_limit,
                "has_unbounded_loop": f.has_unbounded_loop,
                "nondet": [
                    {"detail": n.detail, "line": n.line} for n in f.nondet
                ],
                "calls": [
                    {
                        "kind": c.kind,
                        "target": c.target,
                        "line": c.line,
                        "col": c.col,
                        "passes_stop": c.passes_stop,
                        "passes_deadline": c.passes_deadline,
                    }
                    for c in f.calls
                ],
            }
            for f in facts.functions
        ],
    }


def _as_str(value: object) -> str:
    if not isinstance(value, str):
        raise TypeError(f"expected str, got {value!r}")
    return value


def _as_bool(value: object) -> bool:
    if not isinstance(value, bool):
        raise TypeError(f"expected bool, got {value!r}")
    return value


def _as_list(value: object) -> List[object]:
    if not isinstance(value, list):
        raise TypeError(f"expected list, got {value!r}")
    return value


def _as_dict(value: object) -> Dict[str, object]:
    if not isinstance(value, dict):
        raise TypeError(f"expected dict, got {value!r}")
    return value


def module_facts_from_dict(data: Dict[str, object]) -> ModuleFacts:
    functions: List[FunctionFacts] = []
    for raw in _as_list(data["functions"]):
        entry = _as_dict(raw)
        functions.append(
            FunctionFacts(
                name=_as_str(entry["name"]),
                qname=_as_str(entry["qname"]),
                class_name=_as_str(entry["class_name"]),
                parent=_as_str(entry["parent"]),
                line=_as_int(entry["line"]),
                params=tuple(_as_str(p) for p in _as_list(entry["params"])),
                accepts_stop=_as_bool(entry["accepts_stop"]),
                accepts_deadline=_as_bool(entry["accepts_deadline"]),
                accepts_time_limit=_as_bool(entry["accepts_time_limit"]),
                has_unbounded_loop=_as_bool(entry["has_unbounded_loop"]),
                nondet=tuple(
                    NondetFact(
                        detail=_as_str(_as_dict(n)["detail"]),
                        line=_as_int(_as_dict(n)["line"]),
                    )
                    for n in _as_list(entry["nondet"])
                ),
                calls=tuple(
                    CallSite(
                        kind=_as_str(_as_dict(c)["kind"]),
                        target=_as_str(_as_dict(c)["target"]),
                        line=_as_int(_as_dict(c)["line"]),
                        col=_as_int(_as_dict(c)["col"]),
                        passes_stop=_as_bool(_as_dict(c)["passes_stop"]),
                        passes_deadline=_as_bool(_as_dict(c)["passes_deadline"]),
                    )
                    for c in _as_list(entry["calls"])
                ),
            )
        )
    return ModuleFacts(
        module=_as_str(data["module"]),
        rel=_as_str(data["rel"]),
        path=_as_str(data["path"]),
        is_package=_as_bool(data["is_package"]),
        imports=tuple(
            ImportFact(
                name=_as_str(_as_dict(i)["name"]),
                module=_as_str(_as_dict(i)["module"]),
                attr=_as_str(_as_dict(i)["attr"]),
            )
            for i in _as_list(data["imports"])
        ),
        functions=tuple(functions),
        classes=tuple(_as_str(c) for c in _as_list(data["classes"])),
    )
