""" Output formatting for the checker: a human diff-style rendering and
a machine-readable JSON document (stable key order, sorted findings) so
CI and tooling can consume the same run.

The JSON document deliberately carries no timing or cache information:
a warm (fully cached) run must be byte-identical to a cold one, so the
stats line goes to stderr via :func:`format_stats` instead.
"""

from __future__ import annotations

import json
from typing import Dict, List, Protocol, Sequence

from .core import Finding


class RuleLike(Protocol):
    """What the renderers need from a rule — satisfied by both
    per-file :class:`Rule` and interprocedural :class:`ProjectRule`."""

    rule_id: str
    title: str
    rationale: str


class ReportLike(Protocol):
    """One file's post-suppression results (``FileReport`` or
    ``FileResult``)."""

    @property
    def findings(self) -> List[Finding]: ...

    @property
    def suppressed(self) -> List[Finding]: ...


class StatsLike(Protocol):
    files: int
    extracted: int
    cached: int
    rules: int
    findings: int
    suppressed: int
    seconds: float


def _sorted_findings(reports: Sequence[ReportLike]) -> List[Finding]:
    out: List[Finding] = []
    for report in reports:
        out.extend(report.findings)
    return sorted(out, key=Finding.sort_key)


def render_human(
    reports: Sequence[ReportLike], rules: Sequence[RuleLike]
) -> str:
    """Diff-style rendering: path:line, the offending source line with a
    caret, the rule id and message."""
    lines: List[str] = []
    findings = _sorted_findings(reports)
    for finding in findings:
        lines.append(f"{finding.path}:{finding.line}:{finding.col + 1}: "
                     f"{finding.rule_id} {finding.message}")
        if finding.source_line:
            lines.append(f"    | {finding.source_line}")
            lines.append(f"    | {' ' * finding.col}^")
    checked = len(reports)
    suppressed = sum(len(r.suppressed) for r in reports)
    summary = (
        f"{len(findings)} finding(s), {suppressed} suppressed, "
        f"{checked} file(s) checked, {len(rules)} rule(s)"
    )
    if findings:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    reports: Sequence[ReportLike], rules: Sequence[RuleLike]
) -> str:
    findings = _sorted_findings(reports)
    suppressed: List[Finding] = []
    for report in reports:
        suppressed.extend(report.suppressed)
    suppressed.sort(key=Finding.sort_key)
    doc: Dict[str, object] = {
        "rules": [
            {"id": rule.rule_id, "title": rule.title, "rationale": rule.rationale}
            for rule in rules
        ],
        "files_checked": len(reports),
        "findings": [f.to_dict() for f in findings],
        "suppressed": [f.to_dict() for f in suppressed],
    }
    return json.dumps(doc, indent=2, sort_keys=False)


def format_stats(stats: StatsLike) -> str:
    """The one-line run summary printed to stderr by the CLI."""
    return (
        f"analyzed {stats.files} file(s) "
        f"({stats.extracted} extracted, {stats.cached} cached) "
        f"with {stats.rules} rule(s): "
        f"{stats.findings} finding(s), {stats.suppressed} suppressed "
        f"in {stats.seconds:.2f}s"
    )
