"""Core machinery of the solver-invariant static checker.

The framework is deliberately small: a :class:`SourceFile` wraps one
parsed module (AST, source lines, parent links, suppression comments),
a :class:`Rule` inspects it and yields :class:`Finding` objects, and
:class:`ScopeResolver` provides the per-file name-binding inference the
rules share (which local names are set-typed, which are nested
functions, which executors are thread- vs process-backed).

Suppressions use ``# repro: allow[RPR003] reason`` comments.  The
reason is mandatory — a reasonless suppression is itself reported (as
``RPR000``), so every silenced finding carries its justification in
the diff that introduced it.  A trailing comment suppresses its own
line; a standalone comment suppresses the next line.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .callgraph import CallGraph

#: The pseudo-rule used for problems with the suppression comments
#: themselves (missing reason, unknown rule id).  Not suppressible.
META_RULE_ID = "RPR000"

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_,\s-]+)\]\s*(?P<reason>.*)$"
)


def _as_int(value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"expected int, got {value!r}")
    return value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    source_line: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source": self.source_line,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(
            rule_id=str(data["rule"]),
            path=str(data["path"]),
            line=_as_int(data["line"]),
            col=_as_int(data["col"]),
            message=str(data["message"]),
            source_line=str(data.get("source", "")),
        )


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: allow[...]`` comment."""

    line: int  # line the suppression applies to (not the comment line)
    comment_line: int
    rule_ids: Tuple[str, ...]
    reason: str

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rule_ids and bool(self.reason.strip())

    def to_dict(self) -> Dict[str, object]:
        return {
            "line": self.line,
            "comment_line": self.comment_line,
            "rule_ids": list(self.rule_ids),
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Suppression":
        rule_ids = data["rule_ids"]
        assert isinstance(rule_ids, list)
        return cls(
            line=_as_int(data["line"]),
            comment_line=_as_int(data["comment_line"]),
            rule_ids=tuple(str(r) for r in rule_ids),
            reason=str(data["reason"]),
        )


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every suppression comment with the line it applies to."""
    out: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    # Lines that contain something other than the comment itself: a
    # trailing suppression applies to its own line, a standalone one to
    # the next line.
    code_lines: Set[int] = set()
    for tok in tokens:
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            continue
        for lineno in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(lineno)
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(tok.string)
        if match is None:
            continue
        rule_ids = tuple(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        comment_line = tok.start[0]
        target = comment_line if comment_line in code_lines else comment_line + 1
        out.append(
            Suppression(
                line=target,
                comment_line=comment_line,
                rule_ids=rule_ids,
                reason=match.group("reason").strip(),
            )
        )
    return out


class SourceFile:
    """One parsed module plus everything the rules need to inspect it."""

    def __init__(self, path: Path, rel: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.rel = rel  # package-relative posix path, e.g. "coloring/reduce.py"
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.suppressions = parse_suppressions(source)
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceFile":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(path, rel, source, tree)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def scope_chain(self, node: ast.AST) -> List[str]:
        """Names of the enclosing functions/classes, outermost first."""
        chain: List[str] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                chain.append(current.name)
            current = self.parent(current)
        chain.reverse()
        return chain

    def finding(
        self, rule_id: str, node: ast.AST, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=rule_id,
            path=str(self.path),
            line=lineno,
            col=col,
            message=message,
            source_line=self.line_text(lineno).rstrip(),
        )


def package_rel(path: Path) -> str:
    """Path relative to the enclosing ``repro`` package (posix form).

    Rules scope by package-internal location (``sat/``, ``coloring/``,
    ...), so the checker must see the same relative name whether it is
    pointed at ``src/``, at ``src/repro`` or at a fixture tree that
    mirrors the package layout under some other root.
    """
    parts = list(path.parts)
    for anchor in ("repro", "src"):
        if anchor in parts[:-1]:
            head = parts[:-1]
            index = len(head) - 1 - head[::-1].index(anchor)
            tail = parts[index + 1 :]
            if anchor == "src" and tail and tail[0] == "repro":
                tail = tail[1:]
            return "/".join(tail)
    return "/".join(parts[-2:]) if len(parts) > 1 else parts[-1]


# --------------------------------------------------------------------------
# Per-file scope resolution
# --------------------------------------------------------------------------

#: Methods whose return value is a set in this codebase (the adjacency
#: sets of :class:`repro.graphs.graph.Graph` above all).
SET_RETURNING_METHODS = frozenset(
    {"neighbors", "intersection", "union", "difference", "symmetric_difference"}
)

KIND_SET = "set"
KIND_LIST_OF_SET = "list_of_set"
KIND_NESTED_FUNC = "nested_func"
KIND_THREAD_EXECUTOR = "thread_executor"
KIND_PROCESS_EXECUTOR = "process_executor"


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(target, ast.Name):
        return target.id in (
            "set",
            "frozenset",
            "Set",
            "FrozenSet",
            "AbstractSet",
            "MutableSet",
        )
    return False


class ScopeInfo:
    """Name kinds inferred for one function (or module) scope."""

    def __init__(self) -> None:
        self.kinds: Dict[str, str] = {}
        self._conflicted: Set[str] = set()

    def bind(self, name: str, kind: Optional[str]) -> None:
        if name in self._conflicted:
            return
        if kind is None:
            # An assignment we cannot type invalidates earlier inference.
            if name in self.kinds:
                del self.kinds[name]
                self._conflicted.add(name)
            return
        previous = self.kinds.get(name)
        if previous is not None and previous != kind:
            del self.kinds[name]
            self._conflicted.add(name)
            return
        self.kinds[name] = kind

    def kind_of(self, name: str) -> Optional[str]:
        return self.kinds.get(name)


class ScopeResolver:
    """Best-effort per-file name-binding inference.

    The resolver walks every function scope once, recording which local
    names are bound to set-typed values, lists of sets, nested function
    definitions, or thread/process pool executors.  It is deliberately
    conservative: a name assigned conflicting kinds is forgotten.
    """

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self._scopes: Dict[int, ScopeInfo] = {}
        module_scope = self._build_scope(source.tree)
        self._scopes[id(source.tree)] = module_scope

    def scope_for(self, node: ast.AST) -> ScopeInfo:
        """The :class:`ScopeInfo` of the innermost scope containing ``node``."""
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if id(current) not in self._scopes:
                    self._scopes[id(current)] = self._build_scope(current)
                return self._scopes[id(current)]
            current = self.source.parent(current)
        return self._scopes[id(self.source.tree)]

    # ------------------------------------------------------------ inference
    def _build_scope(self, root: ast.AST) -> ScopeInfo:
        info = ScopeInfo()
        if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = root.args
            for arg in [
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ]:
                if _annotation_is_set(arg.annotation):
                    info.bind(arg.arg, KIND_SET)
        for node in self._walk_scope(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A def nested inside a function is a closure candidate.
                if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.bind(node.name, KIND_NESTED_FUNC)
                continue
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    info.bind(target.id, self._infer(node.value, info))
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _annotation_is_set(node.annotation):
                    info.bind(node.target.id, KIND_SET)
                elif node.value is not None:
                    info.bind(node.target.id, self._infer(node.value, info))
            elif isinstance(node, ast.withitem):
                if isinstance(node.optional_vars, ast.Name):
                    info.bind(
                        node.optional_vars.id,
                        self._infer(node.context_expr, info),
                    )
            elif isinstance(node, ast.For) and isinstance(node.target, ast.Name):
                iter_kind = self._infer(node.iter, info)
                if iter_kind == KIND_LIST_OF_SET:
                    info.bind(node.target.id, KIND_SET)
        return info

    def _walk_scope(self, root: ast.AST) -> Iterator[ast.AST]:
        """Walk ``root`` without descending into nested function scopes."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # separate scope
            stack.extend(ast.iter_child_nodes(node))

    def _infer(self, node: ast.expr, info: ScopeInfo) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return KIND_SET
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return KIND_SET
                if func.id == "ThreadPoolExecutor":
                    return KIND_THREAD_EXECUTOR
                if func.id in ("ProcessPoolExecutor", "Pool"):
                    return KIND_PROCESS_EXECUTOR
                if func.id in ("sorted", "list", "tuple"):
                    return None
            if isinstance(func, ast.Attribute):
                if func.attr in SET_RETURNING_METHODS:
                    return KIND_SET
                if func.attr == "copy" and isinstance(func.value, ast.Name):
                    return info.kind_of(func.value.id)
            return None
        if isinstance(node, ast.ListComp):
            if self.expr_is_set(node.elt, info):
                return KIND_LIST_OF_SET
            return None
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            if self.expr_is_set(node.left, info) or self.expr_is_set(
                node.right, info
            ):
                return KIND_SET
            return None
        if isinstance(node, ast.Name):
            return info.kind_of(node.id)
        return None

    # ------------------------------------------------------------- queries
    def expr_is_set(self, node: ast.expr, info: Optional[ScopeInfo] = None) -> bool:
        """True when ``node`` statically resolves to a set/frozenset."""
        if info is None:
            info = self.scope_for(node)
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in SET_RETURNING_METHODS:
                return True
            return False
        if isinstance(node, ast.Name):
            return info.kind_of(node.id) == KIND_SET
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            return info.kind_of(node.value.id) == KIND_LIST_OF_SET
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            return self.expr_is_set(node.left, info) or self.expr_is_set(
                node.right, info
            )
        return False


# --------------------------------------------------------------------------
# Rule protocol + registry
# --------------------------------------------------------------------------


class Rule:
    """One invariant, checked per file.

    Subclasses set ``rule_id``/``title``/``rationale`` and implement
    :meth:`applies_to` (path scoping over the package-relative path)
    and :meth:`check`.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, rel: str) -> bool:
        raise NotImplementedError

    def check(self, source: SourceFile, resolver: ScopeResolver) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule:
    """One *interprocedural* invariant, checked over the project call
    graph rather than a single file.

    Subclasses set ``rule_id``/``title``/``rationale`` and implement
    :meth:`check_project`, which receives the assembled
    :class:`repro.analysis.callgraph.CallGraph` and yields findings
    anchored at call sites in individual files.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check_project(self, graph: "CallGraph") -> Iterator[Finding]:
        raise NotImplementedError


_RULES: Dict[str, Rule] = {}
_PROJECT_RULES: Dict[str, ProjectRule] = {}


def register_rule(rule_class: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the default registry."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError("rule must define rule_id")
    if rule.rule_id in _RULES or rule.rule_id in _PROJECT_RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _RULES[rule.rule_id] = rule
    return rule_class


def register_project_rule(rule_class: Type["ProjectRule"]) -> Type["ProjectRule"]:
    """Class decorator adding an interprocedural rule to the registry."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError("rule must define rule_id")
    if rule.rule_id in _RULES or rule.rule_id in _PROJECT_RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _PROJECT_RULES[rule.rule_id] = rule
    return rule_class


def all_rules() -> List[Rule]:
    """Registered per-file rules, ordered by id."""
    return [_RULES[k] for k in sorted(_RULES)]


def all_project_rules() -> List[ProjectRule]:
    """Registered interprocedural rules, ordered by id."""
    return [_PROJECT_RULES[k] for k in sorted(_PROJECT_RULES)]


def known_rule_ids() -> Set[str]:
    """Every registered rule id, per-file and interprocedural."""
    return set(_RULES) | set(_PROJECT_RULES)


def get_rules(rule_ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Look up per-file rules by id (all of them when ``rule_ids`` is
    None).  Ids naming interprocedural rules are skipped here — use
    :func:`select_rules` to split a mixed selection."""
    if rule_ids is None:
        return all_rules()
    return select_rules(rule_ids)[0]


def select_rules(
    rule_ids: Optional[Sequence[str]] = None,
) -> Tuple[List[Rule], List[ProjectRule]]:
    """Split a rule-id selection into (per-file rules, project rules).

    ``None`` selects everything.  Unknown ids raise ``KeyError``.
    """
    if rule_ids is None:
        return all_rules(), all_project_rules()
    file_rules: List[Rule] = []
    project_rules: List[ProjectRule] = []
    for rule_id in rule_ids:
        key = rule_id.strip().upper()
        if key in _RULES:
            file_rules.append(_RULES[key])
        elif key in _PROJECT_RULES:
            project_rules.append(_PROJECT_RULES[key])
        else:
            raise KeyError(
                f"unknown rule {rule_id!r}; known rules: "
                f"{sorted(known_rule_ids())}"
            )
    return file_rules, project_rules


@dataclass
class FileReport:
    """Findings of one file, before and after suppression."""

    source: SourceFile
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)


def run_file_rules(source: SourceFile, rules: Sequence[Rule]) -> List[Finding]:
    """Raw (pre-suppression) findings of the per-file ``rules``."""
    resolver = ScopeResolver(source)
    raw: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(source.rel):
            continue
        raw.extend(rule.check(source, resolver))
    return raw


def meta_findings(
    suppressions: Sequence[Suppression],
    path: str,
    line_text: Callable[[int], str],
    known_ids: Optional[Set[str]] = None,
) -> List[Finding]:
    """RPR000 findings for malformed suppression comments themselves."""
    if known_ids is None:
        known_ids = known_rule_ids()
    out: List[Finding] = []
    for supp in suppressions:
        if not supp.reason.strip():
            out.append(
                Finding(
                    rule_id=META_RULE_ID,
                    path=path,
                    line=supp.comment_line,
                    col=0,
                    message=(
                        "suppression without a reason: write "
                        "'# repro: allow[RULE-ID] why it is safe here'"
                    ),
                    source_line=line_text(supp.comment_line).rstrip(),
                )
            )
        for rule_id in supp.rule_ids:
            if rule_id not in known_ids and rule_id != META_RULE_ID:
                out.append(
                    Finding(
                        rule_id=META_RULE_ID,
                        path=path,
                        line=supp.comment_line,
                        col=0,
                        message=f"suppression names unknown rule {rule_id!r}",
                        source_line=line_text(supp.comment_line).rstrip(),
                    )
                )
    return out


def apply_suppressions(
    raw: Sequence[Finding], suppressions: Sequence[Suppression]
) -> Tuple[List[Finding], List[Finding]]:
    """Split raw findings into (kept, suppressed) by the allow comments."""
    by_line: Dict[int, List[Suppression]] = {}
    for supp in suppressions:
        by_line.setdefault(supp.line, []).append(supp)
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in sorted(raw, key=Finding.sort_key):
        candidates = by_line.get(finding.line, [])
        if finding.rule_id != META_RULE_ID and any(
            s.covers(finding.rule_id) for s in candidates
        ):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed


def check_file(
    source: SourceFile, rules: Sequence[Rule]
) -> FileReport:
    """Run ``rules`` over one file and apply its suppression comments."""
    raw = run_file_rules(source, rules)
    raw.extend(
        meta_findings(
            source.suppressions,
            str(source.path),
            source.line_text,
            {rule.rule_id for rule in all_rules()} | set(_PROJECT_RULES),
        )
    )
    report = FileReport(source=source)
    report.findings, report.suppressed = apply_suppressions(
        raw, source.suppressions
    )
    return report
