"""Incremental facts cache: skip re-extracting unchanged files.

The store is one JSON document per cache directory holding, per
analyzed file, the content hash it was extracted from plus everything
a re-run needs: the module facts (for the call graph), the raw
per-file-rule findings, and the parsed suppression comments.  A file
whose content hash, facts version, and rule selection all match is
served from the store without being parsed; everything downstream
(call graph assembly, interprocedural rules, suppression application)
is recomputed from facts on every run, so a warm run's report is
byte-identical to a cold one.

Entries are invalidated by content hash — not mtime — so the cache
survives checkouts, touch(1), and CI cache restores unharmed.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .core import Finding, Suppression
from .facts import (
    FACTS_VERSION,
    ModuleFacts,
    module_facts_from_dict,
    module_facts_to_dict,
)

_STORE_NAME = "facts.json"


@dataclass
class FileEntry:
    """Everything extraction produced for one file."""

    rel: str
    content_hash: str
    facts: ModuleFacts
    raw_findings: List[Finding]
    suppressions: List[Suppression]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rel": self.rel,
            "content_hash": self.content_hash,
            "facts": module_facts_to_dict(self.facts),
            "raw_findings": [f.to_dict() for f in self.raw_findings],
            "suppressions": [s.to_dict() for s in self.suppressions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FileEntry":
        facts = data["facts"]
        raw_findings = data["raw_findings"]
        suppressions = data["suppressions"]
        assert isinstance(facts, dict)
        assert isinstance(raw_findings, list)
        assert isinstance(suppressions, list)
        return cls(
            rel=str(data["rel"]),
            content_hash=str(data["content_hash"]),
            facts=module_facts_from_dict(facts),
            raw_findings=[Finding.from_dict(f) for f in raw_findings],
            suppressions=[Suppression.from_dict(s) for s in suppressions],
        )


class FactsCache:
    """The on-disk store, loaded once per run and saved atomically."""

    def __init__(self, directory: Path, rules_key: str) -> None:
        self.directory = directory
        self.rules_key = rules_key
        self._entries: Dict[str, FileEntry] = {}
        self._dirty = False
        self._load()

    @property
    def store_path(self) -> Path:
        return self.directory / _STORE_NAME

    def _load(self) -> None:
        try:
            raw = self.store_path.read_text(encoding="utf-8")
        except OSError:
            return
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError:
            return  # torn/corrupt store: treat as cold
        if not isinstance(doc, dict):
            return
        if doc.get("facts_version") != FACTS_VERSION:
            return
        if doc.get("rules_key") != self.rules_key:
            return
        files = doc.get("files")
        if not isinstance(files, dict):
            return
        for path, entry in files.items():
            if not isinstance(entry, dict):
                continue
            try:
                self._entries[path] = FileEntry.from_dict(entry)
            except (KeyError, TypeError, AssertionError):
                continue  # one bad entry must not poison the store

    def get(self, path: str, content_hash: str) -> Optional[FileEntry]:
        entry = self._entries.get(path)
        if entry is None or entry.content_hash != content_hash:
            return None
        return entry

    def put(self, path: str, entry: FileEntry) -> None:
        self._entries[path] = entry
        self._dirty = True

    def prune(self, live_paths: "Tuple[str, ...]") -> None:
        """Drop entries for files no longer part of the analyzed set."""
        dead = set(self._entries) - set(live_paths)
        for path in dead:
            del self._entries[path]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        doc = {
            "facts_version": FACTS_VERSION,
            "rules_key": self.rules_key,
            "files": {
                path: self._entries[path].to_dict()
                for path in sorted(self._entries)
            },
        }
        # Atomic replace: a killed run leaves the previous store intact.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=_STORE_NAME, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, sort_keys=True)
            os.replace(tmp_name, self.store_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._dirty = False
