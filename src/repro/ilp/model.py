"""Conversion of a :class:`~repro.core.formula.Formula` to matrix form.

The generic ILP solver (the paper's CPLEX stand-in) works on the
standard algebraic representation ``A_ub x <= b_ub`` over 0-1 variables
rather than on watched clauses.  A literal ``v`` contributes ``x_v``; a
literal ``-v`` contributes ``1 - x_v`` (folded into the bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.formula import Formula


@dataclass
class ILPModel:
    """A 0-1 ILP in matrix form: minimize ``c x`` s.t. ``A x <= b``.

    ``objective_offset`` carries the constant produced by negative
    literals in the objective, so that reported values match
    :meth:`Formula.objective_value`.
    """

    num_vars: int
    a_ub: np.ndarray
    b_ub: np.ndarray
    c: np.ndarray
    objective_offset: int
    sense: str  # "min" or "max" of the *original* formula objective

    def row_count(self) -> int:
        return self.a_ub.shape[0]


def _accumulate(row: np.ndarray, coef: float, lit: int) -> float:
    """Add ``coef * lit`` to a row; returns the constant moved to the RHS."""
    if lit > 0:
        row[lit - 1] += coef
        return 0.0
    row[-lit - 1] -= coef
    return coef  # coef * (1 - x) leaves +coef as a constant


def formula_to_ilp(formula: Formula) -> ILPModel:
    """Build the matrix form of a formula (clauses, PB constraints, objective)."""
    n = formula.num_vars
    rows: List[np.ndarray] = []
    rhs: List[float] = []

    def add_le(terms: List[Tuple[int, int]], bound: float) -> None:
        row = np.zeros(n)
        constant = 0.0
        for coef, lit in terms:
            constant += _accumulate(row, coef, lit)
        rows.append(row)
        rhs.append(bound - constant)

    for clause in formula.clauses:
        # l1 + ... + lk >= 1  ==  -l1 - ... - lk <= -1
        add_le([(-1, l) for l in clause.literals], -1.0)
    for pb in formula.pb_constraints:
        if pb.relation in ("<=", "="):
            add_le(list(pb.terms), float(pb.bound))
        if pb.relation in (">=", "="):
            add_le([(-c, l) for c, l in pb.terms], float(-pb.bound))

    c = np.zeros(n)
    offset = 0
    sense = formula.objective_sense
    sign = 1.0 if sense == "min" else -1.0
    for coef, lit in formula.objective or ():
        if lit > 0:
            c[lit - 1] += sign * coef
        else:
            c[-lit - 1] -= sign * coef
            offset += coef
    a_ub = np.vstack(rows) if rows else np.zeros((0, n))
    b_ub = np.asarray(rhs)
    return ILPModel(n, a_ub, b_ub, c, offset, sense)


def model_objective_value(model: ILPModel, x: np.ndarray) -> float:
    """Objective value of a (possibly fractional) point, in formula terms."""
    raw = float(model.c @ x) + model.objective_offset
    return raw if model.sense == "min" else -raw + 2 * model.objective_offset


def assignment_from_point(x: np.ndarray) -> dict:
    """Round an integral LP point to a variable assignment."""
    return {v + 1: bool(round(val)) for v, val in enumerate(x)}
