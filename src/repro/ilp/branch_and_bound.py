"""Generic LP-relaxation branch and bound — the CPLEX stand-in.

This solver treats a 0-1 ILP the way a generic MIP solver does: relax
to a linear program, solve with the simplex/interior-point code in
scipy (HiGHS), branch on a fractional variable, prune by bound and
infeasibility.  It knows nothing about clauses, learning or symmetry —
which is exactly the behavioural profile the paper observes for CPLEX:
competitive on the plain encodings, *hurt* by large clausal SBP
additions (every added SBP row grows each LP re-solve, while yielding
no cutting-plane benefit).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from ..core.formula import Formula
from ..resilience import Deadline
from ..sat.result import (
    OPTIMAL,
    OptimizeResult,
    SAT,
    SolveResult,
    SolverStats,
    UNKNOWN,
    UNSAT,
)
from .model import ILPModel, assignment_from_point, formula_to_ilp

INT_TOL = 1e-6


class BranchAndBoundSolver:
    """Depth-first LP-based branch and bound over 0-1 variables.

    Parameters mirror a generic MIP solver: ``branch_rule`` is
    ``"most_fractional"`` (default) or ``"first"``; ``node_limit`` and
    time limits bound the search.
    """

    def __init__(
        self,
        branch_rule: str = "most_fractional",
        node_limit: Optional[int] = None,
    ):
        if branch_rule not in ("most_fractional", "first"):
            raise ValueError(f"unknown branch rule {branch_rule!r}")
        self.branch_rule = branch_rule
        self.node_limit = node_limit
        self.nodes_explored = 0

    # ----------------------------------------------------------- internals
    def _solve_lp(
        self, model: ILPModel, lower: np.ndarray, upper: np.ndarray
    ) -> Tuple[str, Optional[np.ndarray], float]:
        bounds = list(zip(lower, upper))
        res = linprog(
            model.c,
            A_ub=model.a_ub if model.row_count() else None,
            b_ub=model.b_ub if model.row_count() else None,
            bounds=bounds,
            method="highs",
        )
        if res.status == 2:  # infeasible
            return "infeasible", None, float("inf")
        if not res.success:
            return "error", None, float("inf")
        return "ok", res.x, float(res.fun)

    def _pick_branch_var(self, x: np.ndarray, fixed: np.ndarray) -> int:
        frac = np.abs(x - np.round(x))
        frac[fixed] = 0.0
        candidates = np.where(frac > INT_TOL)[0]
        if len(candidates) == 0:
            return -1
        if self.branch_rule == "most_fractional":
            scores = np.abs(x[candidates] - 0.5)
            return int(candidates[np.argmin(scores)])
        return int(candidates[0])

    # --------------------------------------------------------------- solve
    def optimize(
        self,
        formula: Formula,
        time_limit: Optional[float] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> OptimizeResult:
        """Minimize/maximize the formula objective; prove optimality.

        ``should_stop`` is polled once per node, like the CDCL engine's
        cancellation hook: when it returns True the incumbent (if any)
        is returned as SAT, otherwise UNKNOWN.
        """
        if formula.objective is None:
            raise ValueError("formula has no objective; use decide()")
        start = time.monotonic()
        deadline = Deadline.after(time_limit)
        stats = SolverStats()
        model = formula_to_ilp(formula)
        n = model.num_vars
        best_value: Optional[float] = None
        best_x: Optional[np.ndarray] = None
        self.nodes_explored = 0
        # Stack of (lower_bounds, upper_bounds) numpy arrays.
        stack: List[Tuple[np.ndarray, np.ndarray]] = [(np.zeros(n), np.ones(n))]
        timed_out = False
        while stack:
            if deadline.expired():
                timed_out = True
                break
            if self.node_limit is not None and self.nodes_explored >= self.node_limit:
                timed_out = True
                break
            if should_stop is not None and should_stop():
                timed_out = True
                break
            lower, upper = stack.pop()
            self.nodes_explored += 1
            stats.decisions += 1
            status, x, lp_value = self._solve_lp(model, lower, upper)
            if status == "infeasible":
                stats.conflicts += 1
                continue
            if status == "error":
                continue
            # Bound pruning: objective coefficients are integral, so any
            # integral solution under this node has value >= ceil(lp).
            node_bound = int(np.ceil(lp_value - 1e-9))
            if best_value is not None and node_bound >= best_value:
                continue
            fixed = lower >= upper  # variables pinned by branching
            frac = np.abs(x - np.round(x))
            if np.all(frac <= INT_TOL):
                value = lp_value
                ivalue = int(round(value))
                if best_value is None or ivalue < best_value:
                    best_value = ivalue
                    best_x = np.round(x)
                continue
            var = self._pick_branch_var(x, fixed)
            if var < 0:
                continue
            # DFS: explore the rounded-towards side first (stack is LIFO,
            # so push the "away" branch first).
            floor_up = upper.copy()
            floor_up[var] = 0.0
            ceil_lo = lower.copy()
            ceil_lo[var] = 1.0
            if x[var] >= 0.5:
                stack.append((lower, floor_up))
                stack.append((ceil_lo, upper))
            else:
                stack.append((ceil_lo, upper))
                stack.append((lower, floor_up))
        stats.time_seconds = time.monotonic() - start
        if best_x is None:
            if timed_out:
                return OptimizeResult(UNKNOWN, stats=stats)
            return OptimizeResult(UNSAT, stats=stats)
        model_assignment = assignment_from_point(best_x)
        value = formula.objective_value(model_assignment)
        status = SAT if timed_out else OPTIMAL
        return OptimizeResult(status, value, model_assignment, stats)

    def decide(
        self,
        formula: Formula,
        time_limit: Optional[float] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> SolveResult:
        """Feasibility check (no objective) via branch and bound."""
        probe = formula.copy()
        probe.set_objective([], sense="min")
        result = self.optimize(probe, time_limit=time_limit, should_stop=should_stop)
        if result.status in (OPTIMAL, SAT):
            return SolveResult(SAT, model=result.best_model, stats=result.stats)
        return SolveResult(result.status, stats=result.stats)


def solve_ilp(
    formula: Formula,
    time_limit: Optional[float] = None,
    node_limit: Optional[int] = None,
) -> OptimizeResult:
    """One-shot generic-ILP optimization (CPLEX-profile solver)."""
    solver = BranchAndBoundSolver(node_limit=node_limit)
    return solver.optimize(formula, time_limit=time_limit)
