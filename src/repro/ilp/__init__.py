"""Generic ILP branch-and-bound over LP relaxations (CPLEX stand-in)."""

from .branch_and_bound import BranchAndBoundSolver, solve_ilp
from .model import ILPModel, formula_to_ilp

__all__ = ["BranchAndBoundSolver", "ILPModel", "formula_to_ilp", "solve_ilp"]
