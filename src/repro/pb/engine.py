"""A pseudo-Boolean (0-1 ILP) extension of the CDCL engine.

This is the architecture of the paper's specialized solvers (PBS II,
Galena, Pueblo): a Chaff-style CDCL core whose propagation also handles
normalized PB constraints ``sum(coef_i * lit_i) >= degree`` via
counter-based (slack) propagation, with conflicts over PB constraints
explained as clauses so the standard first-UIP learning applies — the
CNF-learning scheme of PBS.

Slack bookkeeping: every constraint tracks ``slack = (sum of
coefficients of non-false terms) - degree``.  Negative slack means the
constraint is falsified; an unassigned term whose coefficient exceeds
the slack must be set true.  Slack is updated incrementally as trail
literals are processed and restored on backtrack.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.formula import Formula
from ..core.pbconstraint import LinearGE, normalize_terms
from ..sat.cdcl import CDCLSolver
from ..sat.result import SolveResult, UNSAT


class PBData:
    """Solver-internal state of one normalized PB constraint."""

    __slots__ = ("terms", "degree", "slack", "max_coef")

    def __init__(self, terms: Sequence[Tuple[int, int]], degree: int):
        # Descending coefficients make the propagation scan early-exit.
        self.terms: List[Tuple[int, int]] = sorted(terms, key=lambda t: -t[0])
        self.degree = degree
        self.slack = sum(c for c, _ in self.terms) - degree
        self.max_coef = self.terms[0][0] if self.terms else 0

    def __repr__(self) -> str:
        lhs = " + ".join(f"{c}*{l}" for c, l in self.terms)
        return f"PBData({lhs} >= {self.degree}, slack={self.slack})"


class PBSolver(CDCLSolver):
    """CDCL solver over mixed CNF clauses and PB constraints.

    Decision-problem use::

        solver = PBSolver()
        solver.add_formula(formula)          # clauses + PB constraints
        result = solver.solve(time_limit=10)

    Optimization is layered on top by :mod:`repro.pb.optimizer`.
    """

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.pb_constraints: List[PBData] = []
        # _pb_occ[lit] lists (constraint, coef) pairs whose term literal
        # is falsified when ``lit`` is assigned true (i.e. term == -lit).
        self._pb_occ: Dict[int, List[Tuple[PBData, int]]] = {}
        self.pb_qhead = 0

    # ------------------------------------------------------------- loading
    def add_linear_ge(self, terms: Iterable[Tuple[int, int]], degree: int) -> bool:
        """Add a PB constraint ``sum(coef*lit) >= degree`` (any sign coefs).

        Returns False when the constraint makes the problem UNSAT at
        level 0.  Must be called at decision level 0.
        """
        if self.trail_lim:
            raise RuntimeError("add_linear_ge is only legal at decision level 0")
        norm_terms, norm_degree = normalize_terms(list(terms), degree)
        for _, lit in norm_terms:
            self._ensure_var(abs(lit))
        # Substitute root-level forced literals directly into the
        # constraint: a true literal moves its coefficient onto the
        # degree, a false literal contributes nothing and is dropped.
        # The stored constraint is tighter (smaller degree, fewer terms)
        # and never needs trail-position bookkeeping for old
        # assignments, because dropped terms have no occurrence entries.
        fixed_terms = []
        fixed_degree = norm_degree
        for coef, lit in norm_terms:
            value = self.value_of(lit)
            if value is True:
                fixed_degree -= coef
            elif value is None:
                fixed_terms.append((coef, lit))
        if fixed_degree > 0:
            # Re-saturate: coefficients above the degree act like it.
            fixed_terms = [(min(c, fixed_degree), l) for c, l in fixed_terms]
        constraint = LinearGE(fixed_terms, fixed_degree)
        if constraint.is_tautology:
            return True
        if constraint.is_unsatisfiable:
            self._unsat = True
            return False
        if constraint.is_clause:
            return self.add_clause(constraint.literals())
        data = PBData(constraint.terms, constraint.degree)
        self.pb_constraints.append(data)
        for coef, lit in data.terms:
            self._pb_occ.setdefault(-lit, []).append((data, coef))
        # Initial propagation: constraints can be unit "out of the box".
        if data.slack < 0:
            self._unsat = True
            return False
        if data.slack < data.max_coef:
            for coef, lit in data.terms:
                if coef <= data.slack:
                    break
                if self.value_of(lit) is None:
                    self._enqueue(lit, data)
        if self._propagate() is not None:
            self._unsat = True
            return False
        return True

    def add_formula(self, formula: Formula) -> bool:
        """Load clauses and PB constraints of a formula (objective ignored)."""
        self._ensure_var(formula.num_vars)
        ok = True
        for clause in formula.clauses:
            ok = self.add_clause(clause.literals) and ok
            if not ok:
                return False
        for pb in formula.pb_constraints:
            for geq in pb.to_geq():
                ok = self.add_linear_ge(geq.terms, geq.degree) and ok
                if not ok:
                    return False
        return ok

    # --------------------------------------------------------- propagation
    def _propagate_extra(self) -> Optional[PBData]:
        trail = self.trail
        occ = self._pb_occ
        values = self.values
        while self.pb_qhead < len(trail):
            q = trail[self.pb_qhead]
            self.pb_qhead += 1
            self.stats.propagations += 1
            conflict: Optional[PBData] = None
            # Finish the whole occurrence list even after a conflict:
            # backtracking restores the slack of *every* constraint in
            # occ[q], so every one of them must have been decremented.
            for constraint, coef in occ.get(q, ()):
                constraint.slack -= coef
                if conflict is not None:
                    continue
                slack = constraint.slack
                if slack < 0:
                    conflict = constraint
                    continue
                if slack < constraint.max_coef:
                    for tcoef, tlit in constraint.terms:
                        if tcoef <= slack:
                            break
                        tval = values[tlit] if tlit > 0 else -values[-tlit]
                        if tval == 0:
                            self._enqueue(tlit, constraint)
            if conflict is not None:
                return conflict
        return None

    def _on_backtrack(self, trail_bound: int, popped: List[int]) -> None:
        occ = self._pb_occ
        # Only entries the PB queue actually processed were subtracted.
        limit = self.pb_qhead - trail_bound
        for offset, q in enumerate(popped):
            if offset >= limit:
                break
            for constraint, coef in occ.get(q, ()):
                constraint.slack += coef
        if self.pb_qhead > trail_bound:
            self.pb_qhead = trail_bound

    # ------------------------------------------------------------ analysis
    def _reason_literals(self, reason, lit: int) -> Sequence[int]:
        if reason is None:
            return ()
        if isinstance(reason, PBData):
            return self._explain_pb(reason, lit)
        return reason

    def _explain_pb(self, constraint: PBData, lit: int) -> List[int]:
        """Clause explanation of a PB conflict or propagation.

        For a conflict (``lit == 0``): a subset S of currently-false term
        literals such that falsifying S alone already violates the
        constraint; the clause ``∨ S`` is implied by the constraint.

        For an implied literal ``lit``: same idea restricted to term
        literals falsified *before* ``lit`` was enqueued, with the
        implied literal's coefficient removed from the achievable sum;
        the clause is ``lit ∨ (∨ S)``.
        """
        total = sum(c for c, _ in constraint.terms)
        if lit == 0:
            need = total - constraint.degree + 1
            horizon = None
        else:
            coef_lit = next(c for c, t in constraint.terms if t == lit)
            need = total - constraint.degree - coef_lit + 1
            horizon = self.trail_pos[abs(lit)]
        if need <= 0:
            return [lit] if lit else []
        false_terms: List[Tuple[int, int, int]] = []
        for coef, term in constraint.terms:
            if term == lit:
                continue
            if self.value_of(term) is False:
                pos = self.trail_pos[abs(term)]
                if horizon is None or pos < horizon:
                    false_terms.append((coef, self.level[abs(term)], term))
        # Prefer large coefficients (fewer literals) and low levels
        # (better backjumps) when choosing the explaining subset.
        false_terms.sort(key=lambda t: (-t[0], t[1]))
        chosen: List[int] = []
        covered = 0
        for coef, _, term in false_terms:
            chosen.append(term)
            covered += coef
            if covered >= need:
                break
        if covered < need:
            raise AssertionError(
                f"PB explanation failed: covered {covered} < needed {need} in {constraint!r}"
            )
        if lit:
            return [lit] + chosen
        return chosen

    # --------------------------------------------------------------- solve
    def solve(self, assumptions: Sequence[int] = (), **kwargs) -> SolveResult:
        """Decide satisfiability of the loaded clauses + PB constraints."""
        if self._unsat:
            return SolveResult(UNSAT, failed_assumptions=[])
        return super().solve(assumptions=assumptions, **kwargs)
