"""Pseudo-Boolean (0-1 ILP) solving: engine, optimizer and solver presets."""

from .engine import PBData, PBSolver
from .optimizer import minimize, minimize_binary, minimize_linear
from .presets import PRESETS, SolverPreset, get_preset, solve_decision, solve_optimize

__all__ = [
    "PBData",
    "PBSolver",
    "PRESETS",
    "SolverPreset",
    "get_preset",
    "minimize",
    "minimize_binary",
    "minimize_linear",
    "solve_decision",
    "solve_optimize",
]
