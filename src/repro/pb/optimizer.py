"""0-1 ILP optimization on top of the PB decision engine.

The paper's solvers minimize a linear objective subject to CNF + PB
constraints.  Two search strategies are provided, matching the paper's
Section 4.1 discussion of how chromatic-number bounds are tightened:

* **linear** — solve, add ``objective <= value - 1``, repeat until UNSAT
  (the strategy of PBS/Galena: each improving solution permanently
  tightens the bound in one incremental solver).
* **binary** — bisect on the objective value.  By default this also
  runs on **one persistent solver**: each probe's bound constraint is
  guarded by a fresh selector literal (``objective <= mid`` holds only
  while the selector is assumed true), so upper-half refutations *are*
  retractable — releasing the selector vacuously satisfies the guarded
  constraint — while learned clauses carry over between probes.
  ``incremental=False`` restores the historical one-fresh-solver-per-
  probe behaviour for measurement.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.formula import Formula
from ..core.literals import var_of
from ..core.pbconstraint import normalize_terms
from ..resilience import Deadline
from ..sat.result import OPTIMAL, OptimizeResult, SAT, UNKNOWN, UNSAT, SolverStats
from .engine import PBSolver

SolverFactory = Callable[[], PBSolver]
ShouldStop = Callable[[], bool]


def _objective_value(formula: Formula, model: Dict[int, bool]) -> int:
    total = 0
    for coef, lit in formula.objective or ():
        if (lit > 0) == model[var_of(lit)]:
            total += coef
    return total


def _load(solver: PBSolver, formula: Formula) -> bool:
    return solver.add_formula(formula)


def _bound_terms(formula: Formula, bound: int):
    """Terms and degree of ``objective <= bound`` in >= normal form."""
    flipped = [(-c, l) for c, l in formula.objective or ()]
    return flipped, -bound


def minimize_linear(
    formula: Formula,
    solver_factory: Optional[SolverFactory] = None,
    time_limit: Optional[float] = None,
    conflict_limit: Optional[int] = None,
    upper_bound_hint: Optional[int] = None,
    lower_bound: int = 0,
    incremental: bool = True,
    should_stop: Optional[ShouldStop] = None,
) -> OptimizeResult:
    """Minimize the objective by descending linear search.

    ``upper_bound_hint`` (e.g. from a DSATUR coloring) seeds the bound
    constraint before the first solve; ``lower_bound`` (e.g. a clique
    bound) lets the search stop without a final UNSAT probe.
    ``incremental`` is accepted for interface symmetry with
    :func:`minimize_binary`; the linear strategy always runs one
    persistent solver (bound tightening is monotone).
    """
    if formula.objective is None:
        raise ValueError("formula has no objective")
    deadline = Deadline.after(time_limit)
    stats = SolverStats()
    solver = (solver_factory or PBSolver)()
    if not _load(solver, formula):
        return OptimizeResult(UNSAT, stats=stats)
    if upper_bound_hint is not None:
        terms, degree = _bound_terms(formula, upper_bound_hint)
        if not solver.add_linear_ge(terms, degree):
            return OptimizeResult(UNSAT, stats=stats)
    best_value: Optional[int] = None
    best_model: Optional[Dict[int, bool]] = None
    while True:
        if should_stop is not None and should_stop():
            status = SAT if best_value is not None else UNKNOWN
            return OptimizeResult(status, best_value, best_model, stats)
        if deadline.expired():
            status = SAT if best_value is not None else UNKNOWN
            return OptimizeResult(status, best_value, best_model, stats)
        result = solver.solve(
            time_limit=deadline.remaining(),
            conflict_limit=conflict_limit,
            should_stop=should_stop,
        )
        stats.merge(result.stats)
        if result.is_unsat:
            if best_value is None:
                return OptimizeResult(UNSAT, stats=stats)
            return OptimizeResult(OPTIMAL, best_value, best_model, stats)
        if result.is_unknown:
            status = SAT if best_value is not None else UNKNOWN
            return OptimizeResult(status, best_value, best_model, stats)
        value = _objective_value(formula, result.model)
        if best_value is None or value < best_value:
            best_value, best_model = value, result.model
        if best_value <= lower_bound:
            return OptimizeResult(OPTIMAL, best_value, best_model, stats)
        terms, degree = _bound_terms(formula, best_value - 1)
        if not solver.add_linear_ge(terms, degree):
            return OptimizeResult(OPTIMAL, best_value, best_model, stats)


def minimize_binary(
    formula: Formula,
    solver_factory: Optional[SolverFactory] = None,
    time_limit: Optional[float] = None,
    conflict_limit: Optional[int] = None,
    upper_bound_hint: Optional[int] = None,
    lower_bound: int = 0,
    incremental: bool = True,
    should_stop: Optional[ShouldStop] = None,
) -> OptimizeResult:
    """Minimize the objective by bisection.

    With ``incremental=True`` (default) every probe runs on one
    persistent solver: the probe's bound constraint ``objective <= mid``
    is normalized to ``sum(c_i * ~l_i) >= d`` and guarded with a fresh
    selector ``s`` by adding the term ``(d, ~s)`` — with ``s`` unassumed
    the guard term alone satisfies the constraint, so a refuted
    upper-half probe is retracted simply by dropping the assumption
    while everything learned from it remains sound.  With
    ``incremental=False`` each probe pays for a fresh solver (the
    historical behaviour, kept for measurement).
    """
    if formula.objective is None:
        raise ValueError("formula has no objective")
    if incremental:
        return _minimize_binary_incremental(
            formula, solver_factory, time_limit, conflict_limit,
            upper_bound_hint, lower_bound, should_stop,
        )
    deadline = Deadline.after(time_limit)
    stats = SolverStats()
    factory = solver_factory or PBSolver

    def probe(bound: Optional[int]) -> Tuple[str, Optional[Dict[int, bool]]]:
        solver = factory()
        if not _load(solver, formula):
            return UNSAT, None
        if bound is not None:
            terms, degree = _bound_terms(formula, bound)
            if not solver.add_linear_ge(terms, degree):
                return UNSAT, None
        if deadline.expired():
            return UNKNOWN, None
        if should_stop is not None and should_stop():
            return UNKNOWN, None
        result = solver.solve(
            time_limit=deadline.remaining(),
            conflict_limit=conflict_limit,
            should_stop=should_stop,
        )
        stats.merge(result.stats)
        return result.status, result.model

    # Establish feasibility (and a first incumbent).
    status, model = probe(upper_bound_hint)
    if status == UNSAT and upper_bound_hint is not None:
        # The hint may simply be too tight; retry unconstrained.
        status, model = probe(None)
    if status == UNSAT:
        return OptimizeResult(UNSAT, stats=stats)
    if status == UNKNOWN:
        return OptimizeResult(UNKNOWN, stats=stats)
    best_value = _objective_value(formula, model)
    best_model = model
    lo, hi = lower_bound, best_value
    while lo < hi:
        mid = (lo + hi) // 2
        status, model = probe(mid)
        if status == UNKNOWN:
            return OptimizeResult(SAT, best_value, best_model, stats)
        if status == UNSAT:
            lo = mid + 1
        else:
            value = _objective_value(formula, model)
            if value < best_value:
                best_value, best_model = value, model
            hi = min(best_value, mid)
    return OptimizeResult(OPTIMAL, best_value, best_model, stats)


def _minimize_binary_incremental(
    formula: Formula,
    solver_factory: Optional[SolverFactory],
    time_limit: Optional[float],
    conflict_limit: Optional[int],
    upper_bound_hint: Optional[int],
    lower_bound: int,
    should_stop: Optional[ShouldStop] = None,
) -> OptimizeResult:
    """Bisection on one persistent solver via selector-guarded bounds."""
    deadline = Deadline.after(time_limit)
    stats = SolverStats()
    solver = (solver_factory or PBSolver)()
    if not _load(solver, formula):
        return OptimizeResult(UNSAT, stats=stats)
    # Selector variables live above every formula variable; the solver
    # grows on demand.
    next_selector = [max(formula.num_vars, solver.num_vars)]

    def probe(bound: Optional[int]) -> Tuple[str, Optional[Dict[int, bool]]]:
        assumptions: List[int] = []
        if bound is not None:
            terms, degree = _bound_terms(formula, bound)
            norm_terms, norm_degree = normalize_terms(list(terms), degree)
            if norm_degree > 0:
                next_selector[0] += 1
                selector = next_selector[0]
                # Bias the selector phase off so the solver never
                # branches an old probe's bound back on voluntarily.
                solver._ensure_var(selector)
                solver.saved_phase[selector] = False
                guarded = list(norm_terms) + [(norm_degree, -selector)]
                if not solver.add_linear_ge(guarded, norm_degree):
                    return UNSAT, None
                assumptions = [selector]
        if deadline.expired():
            return UNKNOWN, None
        if should_stop is not None and should_stop():
            return UNKNOWN, None
        result = solver.solve(
            assumptions=assumptions,
            time_limit=deadline.remaining(),
            conflict_limit=conflict_limit,
            should_stop=should_stop,
        )
        stats.merge(result.stats)
        if result.is_unsat and assumptions and not result.failed_assumptions:
            # Empty core: the formula is UNSAT regardless of the probe's
            # bound — report it as such, not as a refuted probe.
            return UNSAT, False
        return result.status, result.model

    refuted_hint = None
    status, model = probe(upper_bound_hint)
    if status == UNSAT and model is None and upper_bound_hint is not None:
        # The hint was too tight, but its refutation is a bound: every
        # objective value <= hint is infeasible.
        refuted_hint = upper_bound_hint
        status, model = probe(None)
    if status == UNSAT or model is False:
        return OptimizeResult(UNSAT, stats=stats)
    if status == UNKNOWN:
        return OptimizeResult(UNKNOWN, stats=stats)
    best_value = _objective_value(formula, model)
    best_model = model
    lo, hi = lower_bound, best_value
    if refuted_hint is not None:
        lo = max(lo, refuted_hint + 1)
    while lo < hi:
        mid = (lo + hi) // 2
        status, model = probe(mid)
        if status == UNKNOWN:
            return OptimizeResult(SAT, best_value, best_model, stats)
        if status == UNSAT:
            if model is False:
                # Globally UNSAT can only mean the incumbent bound search
                # is exhausted; the incumbent stands as optimal.
                return OptimizeResult(OPTIMAL, best_value, best_model, stats)
            lo = mid + 1
        else:
            value = _objective_value(formula, model)
            if value < best_value:
                best_value, best_model = value, model
            hi = min(best_value, mid)
    return OptimizeResult(OPTIMAL, best_value, best_model, stats)


def minimize(
    formula: Formula,
    strategy: str = "linear",
    **kwargs,
) -> OptimizeResult:
    """Minimize ``formula.objective``; strategy is ``"linear"`` or ``"binary"``."""
    if strategy == "linear":
        return minimize_linear(formula, **kwargs)
    if strategy == "binary":
        return minimize_binary(formula, **kwargs)
    raise ValueError(f"unknown optimization strategy {strategy!r}")
