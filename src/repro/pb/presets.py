"""Solver presets modelling the behavioural profiles of the paper's solvers.

The paper compares PBS II, Galena and Pueblo — three specialized 0-1 ILP
solvers that share the CDCL+PB architecture but differ in search
configuration (decision-heuristic parameters, restart policy, database
management) and in how the optimization loop tightens the objective.
We model each as a configuration of the same engine:

* ``pbs2``   — VSIDS decay 0.95, Luby-100 restarts, linear-search
  optimization with PB-style incremental bound tightening.
* ``galena`` — slower decay (0.90), long restarts, linear search with a
  tight learned-clause budget (Galena's default "linear search with
  CARD learning" mode leaned on compact cardinality databases).
* ``pueblo`` — fast decay (0.98), aggressive Luby-64 restarts, hybrid
  binary-search optimization (Pueblo's cutting-plane learning made
  refutation probes cheap).

These are stand-ins: they reproduce the *behavioural role* each solver
plays in the paper's tables (three specialized engines with comparable
performance and identical trends), not the proprietary internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.formula import Formula
from ..sat.result import OptimizeResult, SolveResult
from .engine import PBSolver
from .optimizer import minimize


@dataclass(frozen=True)
class SolverPreset:
    """A named configuration of the PB engine."""

    name: str
    decay: float = 0.95
    restart_base: int = 100
    phase_default: bool = False
    max_learned_start: int = 4000
    optimization_strategy: str = "linear"
    description: str = ""

    def make_solver(self, num_vars: int = 0) -> PBSolver:
        """Instantiate a fresh engine with this preset's parameters."""
        return PBSolver(
            num_vars=num_vars,
            decay=self.decay,
            restart_base=self.restart_base,
            phase_default=self.phase_default,
            max_learned_start=self.max_learned_start,
        )

    def solver_factory(self) -> Callable[[], PBSolver]:
        return lambda: self.make_solver()


PRESETS: Dict[str, SolverPreset] = {
    "pbs2": SolverPreset(
        name="pbs2",
        decay=0.95,
        restart_base=100,
        optimization_strategy="linear",
        description="PBS II profile: Chaff-style VSIDS, linear-search optimization",
    ),
    "galena": SolverPreset(
        name="galena",
        decay=0.90,
        restart_base=250,
        max_learned_start=2500,
        optimization_strategy="linear",
        description="Galena profile: long restarts, compact learned DB, linear search",
    ),
    "pueblo": SolverPreset(
        name="pueblo",
        decay=0.98,
        restart_base=64,
        optimization_strategy="binary",
        description="Pueblo profile: aggressive restarts, binary-search optimization",
    ),
}


def get_preset(name: str) -> SolverPreset:
    """Look up a preset by name.

    Raises ``ValueError`` naming the registered choices — preset lookup
    is an API boundary, so a bad name must fail fast and legibly, not as
    a ``KeyError`` from deep inside a table.
    """
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown solver preset {name!r}; registered choices: {sorted(PRESETS)}"
        ) from None


def solve_decision(
    formula: Formula,
    preset: str = "pbs2",
    time_limit: Optional[float] = None,
    conflict_limit: Optional[int] = None,
) -> SolveResult:
    """Decide a (possibly mixed CNF+PB) formula with a named preset."""
    config = get_preset(preset)
    solver = config.make_solver(formula.num_vars)
    if not solver.add_formula(formula):
        from ..sat.result import UNSAT

        return SolveResult(UNSAT)
    return solver.solve(time_limit=time_limit, conflict_limit=conflict_limit)


def solve_optimize(
    formula: Formula,
    preset: str = "pbs2",
    time_limit: Optional[float] = None,
    conflict_limit: Optional[int] = None,
    upper_bound_hint: Optional[int] = None,
    lower_bound: int = 0,
    should_stop: Optional[Callable[[], bool]] = None,
) -> OptimizeResult:
    """Minimize a formula's objective with a named preset."""
    config = get_preset(preset)
    return minimize(
        formula,
        strategy=config.optimization_strategy,
        solver_factory=config.solver_factory(),
        time_limit=time_limit,
        conflict_limit=conflict_limit,
        upper_bound_hint=upper_bound_hint,
        lower_bound=lower_bound,
        should_stop=should_stop,
    )
