"""Kernelization for K-coloring: shrink the instance before encoding.

Two classical reductions, both exact for the *decision* problem
"is G K-colorable?":

* **low-degree peeling** — a vertex with degree < K can always be
  colored last (some color is free), so it can be removed; iterate to a
  fixpoint (this deletes everything outside the (K-1)-core);
* **component split** — color connected components independently.

``peel_low_degree`` builds the kernel and ``extend_coloring`` lifts a
kernel coloring back to the full graph; ``solve_with_reduction`` wraps
a decision solver with both reductions.  The optimization pipeline
(``repro.coloring.solve``) reuses the same pieces with the peeling
threshold set to the clique lower bound, which preserves the chromatic
number, not just K-colorability.  On sparse benchmarks (books, miles)
the kernel is dramatically smaller than the input, which is exactly why
the paper's "realistic graphs are relatively sparse" instances are
tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graphs.analysis import connected_components
from ..graphs.graph import Graph


@dataclass
class Kernel:
    """A reduced K-coloring instance plus the undo information."""

    graph: Graph  # the kernel graph (possibly empty)
    k: int
    kernel_to_original: List[int]
    peeled: List[Tuple[int, List[int]]] = field(default_factory=list)
    # peeled entries are (original vertex, original neighbor list) in
    # removal order; re-coloring replays them in reverse.

    @property
    def fully_reduced(self) -> bool:
        """True when peeling alone proves K-colorability."""
        return self.graph.num_vertices == 0


def peel_low_degree(graph: Graph, k: int) -> Kernel:
    """Remove vertices of degree < k to a fixpoint (the (k-1)-core)."""
    n = graph.num_vertices
    alive = [True] * n
    degree = [graph.degree(v) for v in range(n)]
    stack = [v for v in range(n) if degree[v] < k]
    peeled: List[Tuple[int, List[int]]] = []
    while stack:
        v = stack.pop()
        if not alive[v] or degree[v] >= k:
            continue
        alive[v] = False
        # Sorted so the peel record (and the colors extend_coloring
        # later picks) cannot drift with adjacency-set hash order.
        peeled.append((v, [w for w in sorted(graph.neighbors(v)) if alive[w]]))
        for w in sorted(graph.neighbors(v)):
            if alive[w]:
                degree[w] -= 1
                if degree[w] < k:
                    stack.append(w)
    survivors = [v for v in range(n) if alive[v]]
    kernel_graph = graph.subgraph(survivors)
    kernel_graph.name = f"{graph.name}-core{k}" if graph.name else ""
    return Kernel(kernel_graph, k, survivors, peeled)


def extend_coloring(kernel: Kernel, kernel_coloring: Dict[int, int]) -> Dict[int, int]:
    """Lift a kernel coloring back to the original graph.

    Peeled vertices are re-inserted in reverse removal order; each had
    degree < k at removal time, so a free color always exists.
    """
    coloring: Dict[int, int] = {
        kernel.kernel_to_original[v]: c for v, c in kernel_coloring.items()
    }
    for v, neighbors in reversed(kernel.peeled):
        used = {coloring[w] for w in neighbors if w in coloring}
        color = next(c for c in range(1, kernel.k + 1) if c not in used)
        coloring[v] = color
    return coloring


def component_subgraphs(
    graph: Graph, largest_first: bool = False
) -> List[Tuple[List[int], Graph]]:
    """Connected components paired with their induced subgraphs.

    Each entry is ``(vertices, subgraph)`` where ``vertices`` is the
    sorted component vertex list in ``graph``'s numbering and
    ``subgraph`` relabels it to ``0..len-1`` (so ``vertices[local]`` maps
    a subgraph vertex back).  ``largest_first=True`` returns the
    components in descending size — the schedule order of the Session
    pool, which starts the longest descent first.
    """
    pairs = [
        (component, graph.subgraph(component))
        for component in connected_components(graph)
    ]
    if largest_first:
        pairs.sort(key=lambda pair: (-len(pair[0]), pair[0]))
    return pairs


@dataclass
class ReducedSolve:
    """Outcome of :func:`solve_with_reduction`."""

    status: str
    coloring: Optional[Dict[int, int]]
    kernel_vertices: int
    original_vertices: int
    components_solved: int


def solve_with_reduction(
    graph: Graph,
    k: int,
    decide,
) -> ReducedSolve:
    """Decide K-colorability with peeling + component decomposition.

    ``decide(subgraph, k)`` must return ``(status, coloring-or-None)``
    with status in {"SAT", "UNSAT", "UNKNOWN"}; it is invoked only on
    the nontrivial kernel components.
    """
    kernel = peel_low_degree(graph, k)
    if kernel.fully_reduced:
        coloring = extend_coloring(kernel, {})
        return ReducedSolve("SAT", coloring, 0, graph.num_vertices, 0)
    kernel_coloring: Dict[int, int] = {}
    components = connected_components(kernel.graph)
    solved = 0
    for component in components:
        sub = kernel.graph.subgraph(component)
        status, sub_coloring = decide(sub, k)
        if status != "SAT":
            return ReducedSolve(status, None, kernel.graph.num_vertices,
                                graph.num_vertices, solved)
        solved += 1
        for local, original in enumerate(component):
            kernel_coloring[original] = sub_coloring[local]
    coloring = extend_coloring(kernel, kernel_coloring)
    return ReducedSolve("SAT", coloring, kernel.graph.num_vertices,
                        graph.num_vertices, solved)
