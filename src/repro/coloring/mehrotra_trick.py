"""Mehrotra–Trick independent-set formulation (Section 2.1 contrast).

The paper's encoding assigns colors to vertices with indicator
variables; Mehrotra & Trick (1996) instead introduce one 0-1 variable
per *maximal independent set* and solve a set-covering ILP:

    min  sum_S z_S     s.t.  sum_{S : v in S} z_S >= 1   for every v

The paper notes this formulation "inherently breaks problem symmetries,
and thus rules out the use of SBPs" — there simply are no color
variables to permute.  We implement it (with full maximal-independent-
set enumeration, plus a greedy column cap for larger graphs standing in
for column generation) so that claim can be demonstrated: detection on
the MT formulation finds only set-swap symmetries of the graph itself,
never a color factor of K!.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from ..core.formula import Formula
from ..graphs.graph import Graph
from ..pb.presets import solve_optimize
from ..sat.result import OptimizeResult


def maximal_independent_sets(graph: Graph, limit: Optional[int] = None) -> List[FrozenSet[int]]:
    """All maximal independent sets, via Bron–Kerbosch on the complement.

    ``limit`` caps the enumeration (the MT paper uses column generation
    instead of full enumeration; the cap plays that role here).
    """
    n = graph.num_vertices
    # Independent sets of G are cliques of the complement.
    comp_adj: List[Set[int]] = [set() for _ in range(n)]
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v):
                comp_adj[u].add(v)
                comp_adj[v].add(u)
    out: List[FrozenSet[int]] = []

    def bron_kerbosch(r: Set[int], p: Set[int], x: Set[int]) -> bool:
        if limit is not None and len(out) >= limit:
            return False
        if not p and not x:
            out.append(frozenset(r))
            return True
        # Tie-break the pivot and sort the candidates so the columns
        # (and with them the z-variable numbering the solver sees) come
        # out identically on every run, whatever the hash seed.
        pivot = max(p | x, key=lambda u: (len(comp_adj[u] & p), -u))
        for v in sorted(p - comp_adj[pivot]):
            if not bron_kerbosch(r | {v}, p & comp_adj[v], x & comp_adj[v]):
                return False
            p.discard(v)
            x.add(v)
        return True

    if n:
        bron_kerbosch(set(), set(range(n)), set())
    return out


def build_mt_formula(
    graph: Graph, columns: List[FrozenSet[int]]
) -> "tuple[Formula, Dict[int, FrozenSet[int]]]":
    """The set-covering ILP over the given independent-set columns."""
    formula = Formula()
    var_of_column: Dict[int, FrozenSet[int]] = {}
    for column in columns:
        var = formula.new_var(("z", tuple(sorted(column))))
        var_of_column[var] = column
    for v in graph.vertices():
        covering = [var for var, col in var_of_column.items() if v in col]
        if not covering:
            raise ValueError(f"vertex {v} is in no column; enumeration cap too tight")
        formula.add_clause(covering)  # cover constraint: >= 1
    formula.set_objective([(1, var) for var in var_of_column])
    return formula, var_of_column


@dataclass
class MTResult:
    """Outcome of the Mehrotra–Trick pipeline."""

    status: str
    chromatic_number: Optional[int]
    coloring: Optional[Dict[int, int]]
    num_columns: int
    time_seconds: float


def mt_chromatic_number(
    graph: Graph,
    solver_preset: str = "pbs2",
    time_limit: Optional[float] = None,
    column_limit: Optional[int] = 20000,
) -> MTResult:
    """Chromatic number via the independent-set covering formulation.

    Covers may overlap; each vertex takes the color of the first chosen
    set containing it, which is a proper coloring because every chosen
    set is independent.
    """
    start = time.monotonic()
    if graph.num_vertices == 0:
        return MTResult("OPTIMAL", 0, {}, 0, 0.0)
    columns = maximal_independent_sets(graph, limit=column_limit)
    formula, var_of_column = build_mt_formula(graph, columns)
    result: OptimizeResult = solve_optimize(
        formula, preset=solver_preset, time_limit=time_limit
    )
    coloring: Optional[Dict[int, int]] = None
    value: Optional[int] = None
    if result.best_model is not None:
        chosen = [var for var in var_of_column if result.best_model[var]]
        coloring = {}
        for color, var in enumerate(chosen, start=1):
            for v in var_of_column[var]:
                coloring.setdefault(v, color)
        value = len({c for c in coloring.values()})
    return MTResult(
        status=result.status,
        chromatic_number=value,
        coloring=coloring,
        num_columns=len(columns),
        time_seconds=time.monotonic() - start,
    )
