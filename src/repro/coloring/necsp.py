"""Benhamou-style not-equals CSP solver — the other Section 4.3 comparator.

Benhamou (2004) models graph coloring as a binary CSP whose only
constraint is "not-equals" (NECSP) and exploits *value
interchangeability*: all values not yet used by any assigned variable
are symmetric, so a branch only needs to try the used values plus ONE
fresh value.  That linear-time symmetry condition is exactly the NU
predicate enforced dynamically during search.

The solver below is a forward-checking backtracker over not-equals
constraints with:

* interchangeable-value branching (the symmetry break);
* dom/deg variable ordering (smallest remaining domain first);
* an optimization wrapper that tightens the domain size, mirroring how
  the paper uses it to find chromatic numbers.

It is deliberately problem-specific — the point of the comparison is
problem-specific search vs. the paper's reduction-based pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..graphs.cliques import clique_lower_bound
from ..graphs.coloring_heuristics import dsatur
from ..graphs.graph import Graph
from ..resilience import Deadline


@dataclass
class NECSPResult:
    """Outcome of a not-equals CSP (k-coloring) query."""

    status: str  # "SAT" / "UNSAT" / "UNKNOWN"
    assignment: Optional[Dict[int, int]]
    nodes_explored: int
    time_seconds: float


def solve_necsp(
    graph: Graph,
    num_values: int,
    time_limit: Optional[float] = None,
    node_limit: Optional[int] = None,
    break_value_symmetry: bool = True,
) -> NECSPResult:
    """Decide whether the not-equals CSP over ``num_values`` is satisfiable.

    ``break_value_symmetry=False`` disables interchangeable-value
    branching (for measuring what the symmetry break buys, as Benhamou's
    paper does).
    """
    start = time.monotonic()
    deadline = Deadline.after(time_limit)
    n = graph.num_vertices
    if n == 0:
        return NECSPResult("SAT", {}, 0, 0.0)
    if num_values <= 0:
        return NECSPResult("UNSAT", None, 0, 0.0)
    adj = [graph.neighbors(v) for v in range(n)]
    domains: List[Set[int]] = [set(range(1, num_values + 1)) for _ in range(n)]
    assignment: Dict[int, int] = {}
    nodes = [0]
    timed_out = [False]

    def over_budget() -> bool:
        if node_limit is not None and nodes[0] > node_limit:
            return True
        if deadline.bounded and (nodes[0] & 127) == 0:
            return deadline.expired()
        return False

    def select_variable() -> int:
        best_v, best_key = -1, None
        for v in range(n):
            if v in assignment:
                continue
            key = (len(domains[v]), -len(adj[v]), v)
            if best_key is None or key < best_key:
                best_v, best_key = v, key
        return best_v

    def recurse(max_used: int) -> bool:
        if over_budget():
            timed_out[0] = True
            return False
        nodes[0] += 1
        if len(assignment) == n:
            return True
        v = select_variable()
        if break_value_symmetry:
            # Used values are distinguishable; unused ones are fully
            # interchangeable -> try used values + one representative.
            candidates = [c for c in sorted(domains[v]) if c <= max_used]
            fresh = [c for c in sorted(domains[v]) if c > max_used]
            if fresh:
                candidates.append(fresh[0])
        else:
            candidates = sorted(domains[v])
        for value in candidates:
            assignment[v] = value
            pruned: List[int] = []
            wipeout = False
            for w in adj[v]:
                if w in assignment:
                    continue
                if value in domains[w]:
                    domains[w].discard(value)
                    pruned.append(w)
                    if not domains[w]:
                        wipeout = True
                        break
            if not wipeout and recurse(max(max_used, value)):
                return True
            for w in pruned:
                domains[w].add(value)
            del assignment[v]
            if timed_out[0]:
                return False
        return False

    found = recurse(0)
    elapsed = time.monotonic() - start
    if found:
        return NECSPResult("SAT", dict(assignment), nodes[0], elapsed)
    return NECSPResult("UNKNOWN" if timed_out[0] else "UNSAT", None, nodes[0], elapsed)


@dataclass
class NECSPOptimum:
    """Outcome of the NECSP chromatic-number search."""

    status: str  # "OPTIMAL" / "SAT" / "UNKNOWN"
    chromatic_number: Optional[int]
    coloring: Optional[Dict[int, int]]
    nodes_explored: int
    time_seconds: float


def necsp_chromatic_number(
    graph: Graph,
    time_limit: Optional[float] = None,
    node_limit: Optional[int] = None,
    break_value_symmetry: bool = True,
) -> NECSPOptimum:
    """Chromatic number by descending NECSP decision queries."""
    start = time.monotonic()
    deadline = Deadline.after(time_limit)
    heuristic, ub = dsatur(graph)
    best = {v: c + 1 for v, c in heuristic.items()}
    lb = max(1, clique_lower_bound(graph)) if graph.num_vertices else 0
    k = ub - 1
    nodes = 0
    while k >= lb and graph.num_vertices:
        budget = deadline.remaining()
        if budget is not None and budget <= 0:
            return NECSPOptimum("SAT", k + 1, best, nodes, time.monotonic() - start)
        result = solve_necsp(
            graph, k, time_limit=budget, node_limit=node_limit,
            break_value_symmetry=break_value_symmetry,
        )
        nodes += result.nodes_explored
        if result.status == "UNKNOWN":
            return NECSPOptimum("SAT", k + 1, best, nodes, time.monotonic() - start)
        if result.status == "UNSAT":
            return NECSPOptimum("OPTIMAL", k + 1, best, nodes, time.monotonic() - start)
        best = result.assignment
        k = len(set(best.values())) - 1
    chromatic = lb if graph.num_vertices else 0
    if not graph.num_vertices:
        best = {}
    return NECSPOptimum("OPTIMAL", chromatic, best, nodes, time.monotonic() - start)
