"""High-level exact coloring API: the paper's full pipeline in one call.

``solve_coloring`` reproduces the experimental flow of Section 4, with
the simplification stages that make the paper's sparse instances
(books, miles, register graphs) tractable wired in:

1. optionally kernelize the graph — low-degree peeling at the clique
   lower bound plus connected-component splitting (``reduce=True``);
2. encode K-coloring as 0-1 ILP (Section 2.5);
3. optionally append instance-independent SBPs (NU/CA/LI/SC, Section 3);
4. optionally simplify the clause database (tautology/duplicate
   removal, unit propagation, subsumption, self-subsuming resolution,
   forced-literal substitution into PB constraints —
   ``preprocess=True``, model-preserving, so decoded colorings need no
   fix-up);
5. optionally run symmetry detection — on the *simplified* formula,
   which is smaller and cheaper to canonicalize — and append
   instance-dependent lex-leader SBPs (the Shatter flow);
6. minimize the number of used colors with a chosen solver profile
   (PBS II / Galena / Pueblo presets, or the generic LP-based branch
   and bound standing in for CPLEX).  The binary-search profiles run
   all probes on one persistent incremental solver with
   selector-guarded bound constraints (``incremental=True``).

``find_chromatic_number`` wraps it with sensible defaults — both
simplification stages on — and DSATUR / clique bounds, following the
bound-seeding procedure the paper sketches in Section 4.1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..graphs.analysis import connected_components
from ..graphs.cliques import clique_lower_bound
from ..graphs.coloring_heuristics import dsatur
from ..graphs.graph import Graph
from ..ilp.branch_and_bound import BranchAndBoundSolver
from ..pb.presets import get_preset
from ..pb.optimizer import minimize
from ..sat.preprocessing import SimplifyStats, simplify_formula
from ..sat.result import OPTIMAL, OptimizeResult, SAT, UNKNOWN, UNSAT
from ..sbp.instance_independent import apply_sbp
from ..sbp.lex_leader import add_symmetry_breaking_predicates
from ..symmetry.detect import SymmetryReport, detect_symmetries
from .encoding import (
    ColoringEncoding,
    decode_coloring,
    encode_coloring,
    normalize_coloring,
)
from .reduce import extend_coloring, peel_low_degree
from .verify import check_proper

SOLVER_NAMES = ("pbs2", "galena", "pueblo", "cplex-bb")


@dataclass
class PipelineInfo:
    """What the simplification stages did during one solve."""

    preprocess: bool = False
    reduce: bool = False
    simplify: Optional[SimplifyStats] = None
    original_vertices: int = 0
    kernel_vertices: int = 0
    peeled_vertices: int = 0
    components_solved: int = 0


@dataclass
class ColoringSolveResult:
    """Everything a table row needs about one solve."""

    status: str  # OPTIMAL / SAT / UNSAT / UNKNOWN
    num_colors: Optional[int] = None
    coloring: Optional[Dict[int, int]] = None
    solve_seconds: float = 0.0
    encode_seconds: float = 0.0
    detection: Optional[SymmetryReport] = None
    solver: str = ""
    sbp_kind: str = "none"
    instance_dependent: bool = False
    pipeline: Optional[PipelineInfo] = None

    @property
    def solved(self) -> bool:
        """Definitive outcome (optimum proved or infeasibility proved)."""
        return self.status in (OPTIMAL, UNSAT)


def prepare_formula(
    graph: Graph,
    num_colors: int,
    sbp_kind: str = "none",
    instance_dependent: bool = False,
    detection_node_limit: Optional[int] = 50000,
    detection_cache: Optional[Dict] = None,
) -> "tuple[ColoringEncoding, Optional[SymmetryReport]]":
    """Encode + SBPs; returns the encoding and the detection report.

    The detection report is ``None`` unless instance-dependent SBPs were
    requested.  ``detection_cache`` (an ordinary dict, keyed by
    ``(graph.name, num_colors, sbp_kind)``) lets callers reuse detection
    results across solver runs on the same deterministic encoding — the
    encoding depends only on the graph and parameters, so the cache is
    exact, not approximate.  Unnamed graphs are never cached.

    Note: ``solve_coloring`` no longer uses this helper when
    ``preprocess=True`` — it simplifies the clause database *first* and
    detects symmetries on the smaller formula (see
    :func:`_detect_and_break`).  This function keeps the historical
    encode-then-detect order for callers that want the raw encoding.
    """
    encoding = encode_coloring(graph, num_colors)
    encoding = apply_sbp(encoding, sbp_kind)
    report: Optional[SymmetryReport] = None
    if instance_dependent:
        report = _detect_and_break(
            encoding.formula,
            key=(graph.name, num_colors, sbp_kind, False) if graph.name else None,
            detection_node_limit=detection_node_limit,
            detection_cache=detection_cache,
        )
    return encoding, report


def _detect_and_break(
    formula,
    key,
    detection_node_limit: Optional[int],
    detection_cache: Optional[Dict],
) -> SymmetryReport:
    """Detect symmetries of ``formula`` and append lex-leader SBPs.

    The detection runs on whatever formula it is handed — in the
    standard pipeline that is the *simplified* clause database, which is
    smaller and therefore cheaper to canonicalize than the raw encoding
    (the ROADMAP's "detect after simplification" note).  Simplification
    is model-preserving, so symmetries of the simplified formula permute
    exactly the models of the original encoding and the lex-leader
    predicates remain sound.
    """
    if detection_cache is not None and key is not None and key in detection_cache:
        report = detection_cache[key]
    else:
        report = detect_symmetries(
            formula, node_limit=detection_node_limit, compute_order=False
        )
        if detection_cache is not None and key is not None:
            detection_cache[key] = report
    add_symmetry_breaking_predicates(formula, report.generators)
    return report


def solve_coloring(
    graph: Graph,
    num_colors: int,
    solver: str = "pbs2",
    sbp_kind: str = "none",
    instance_dependent: bool = False,
    time_limit: Optional[float] = None,
    conflict_limit: Optional[int] = None,
    use_bounds: bool = True,
    detection_node_limit: Optional[int] = 50000,
    detection_cache: Optional[Dict] = None,
    preprocess: bool = True,
    reduce: bool = False,
    incremental: bool = True,
) -> ColoringSolveResult:
    """Minimize the colors used on ``graph`` within a budget of ``num_colors``.

    Status is UNSAT when the graph is not ``num_colors``-colorable —
    the paper's "chromatic number > K" rows.

    ``preprocess`` simplifies the clause database after encoding
    (model-preserving, so answers are identical).  ``reduce`` peels
    low-degree vertices at the clique lower bound and solves connected
    kernel components independently before encoding anything; both the
    decision answer and the minimized color count are preserved because
    ``chi(G) = max(chi(kernel), clique bound)`` when only vertices of
    degree below the bound are peeled.
    """
    if solver not in SOLVER_NAMES:
        raise ValueError(f"unknown solver {solver!r}; expected one of {SOLVER_NAMES}")
    if reduce:
        return _solve_reduced(
            graph,
            num_colors,
            solver=solver,
            sbp_kind=sbp_kind,
            instance_dependent=instance_dependent,
            time_limit=time_limit,
            conflict_limit=conflict_limit,
            use_bounds=use_bounds,
            detection_node_limit=detection_node_limit,
            detection_cache=detection_cache,
            preprocess=preprocess,
            incremental=incremental,
        )
    t0 = time.monotonic()
    encoding = apply_sbp(encode_coloring(graph, num_colors), sbp_kind)
    pipeline = PipelineInfo(
        preprocess=preprocess,
        original_vertices=graph.num_vertices,
        kernel_vertices=graph.num_vertices,
    )
    formula = encoding.formula
    report: Optional[SymmetryReport] = None
    if preprocess:
        # Simplify the clause database *before* symmetry detection so
        # the (expensive) detection canonicalizes the smaller formula.
        # Simplification is model-preserving, hence detection on the
        # simplified formula breaks exactly the symmetries of the
        # original encoding's solution set.
        simplified, stats = simplify_formula(formula)
        pipeline.simplify = stats
        if simplified is None:
            # The clause database alone is contradictory (e.g. SBPs
            # colliding with a too-small budget): not K-colorable.
            return ColoringSolveResult(
                status=UNSAT,
                encode_seconds=time.monotonic() - t0,
                detection=report,
                solver=solver,
                sbp_kind=sbp_kind,
                instance_dependent=instance_dependent,
                pipeline=pipeline,
            )
        formula = simplified
    if instance_dependent:
        key = (
            (graph.name, num_colors, sbp_kind, preprocess)
            if graph.name else None
        )
        report = _detect_and_break(
            formula,
            key=key,
            detection_node_limit=detection_node_limit,
            detection_cache=detection_cache,
        )
    encode_seconds = time.monotonic() - t0

    upper = None
    lower = 0
    if use_bounds:
        _, heuristic_colors = dsatur(graph)
        if heuristic_colors <= num_colors:
            upper = heuristic_colors
        lower = clique_lower_bound(graph)

    t1 = time.monotonic()
    if solver == "cplex-bb":
        result = BranchAndBoundSolver().optimize(formula, time_limit=time_limit)
    else:
        preset = get_preset(solver)
        result = minimize(
            formula,
            strategy=preset.optimization_strategy,
            solver_factory=preset.solver_factory(),
            time_limit=time_limit,
            conflict_limit=conflict_limit,
            upper_bound_hint=upper,
            lower_bound=lower,
            incremental=incremental,
        )
    solve_seconds = time.monotonic() - t1
    return _package(encoding, result, solve_seconds, encode_seconds, report,
                    solver, sbp_kind, instance_dependent, pipeline)


def _solve_reduced(
    graph: Graph,
    num_colors: int,
    solver: str,
    sbp_kind: str,
    instance_dependent: bool,
    time_limit: Optional[float],
    conflict_limit: Optional[int],
    use_bounds: bool,
    detection_node_limit: Optional[int],
    detection_cache: Optional[Dict],
    preprocess: bool,
    incremental: bool = True,
) -> ColoringSolveResult:
    """Kernelize, solve the kernel components, lift the coloring back.

    Peeling at the clique lower bound ``lb`` is exact for optimization:
    removing a vertex of degree < lb never changes ``max(chi, lb)``, so
    ``chi(G) = max(chi(kernel), lb)``, and re-inserting peeled vertices
    greedily stays inside that many colors.
    """
    start = time.monotonic()
    lower = clique_lower_bound(graph)
    pipeline = PipelineInfo(
        preprocess=preprocess,
        reduce=True,
        original_vertices=graph.num_vertices,
        # Until peeling runs, the kernel is the whole graph (the early
        # clique-bound UNSAT exit below never peels anything).
        kernel_vertices=graph.num_vertices,
    )
    base = ColoringSolveResult(
        status=UNKNOWN, solver=solver, sbp_kind=sbp_kind,
        instance_dependent=instance_dependent, pipeline=pipeline,
    )
    if lower > num_colors:
        base.status = UNSAT
        base.solve_seconds = time.monotonic() - start
        return base
    threshold = max(1, lower)
    kernel = peel_low_degree(graph, threshold)
    pipeline.kernel_vertices = kernel.graph.num_vertices
    pipeline.peeled_vertices = graph.num_vertices - kernel.graph.num_vertices
    pipeline.simplify = SimplifyStats() if preprocess else None

    kernel_coloring: Dict[int, int] = {}
    status = OPTIMAL
    detection: Optional[SymmetryReport] = None
    encode_seconds = 0.0
    solve_seconds = 0.0
    components: List[List[int]] = (
        connected_components(kernel.graph) if kernel.graph.num_vertices else []
    )
    for component in components:
        remaining = None
        if time_limit is not None:
            remaining = max(0.0, time_limit - (time.monotonic() - start))
        sub = kernel.graph.subgraph(component)
        result = solve_coloring(
            sub,
            num_colors,
            solver=solver,
            sbp_kind=sbp_kind,
            instance_dependent=instance_dependent,
            time_limit=remaining,
            conflict_limit=conflict_limit,
            use_bounds=use_bounds,
            detection_node_limit=detection_node_limit,
            detection_cache=detection_cache,
            preprocess=preprocess,
            reduce=False,
            incremental=incremental,
        )
        encode_seconds += result.encode_seconds
        solve_seconds += result.solve_seconds
        if result.pipeline and result.pipeline.simplify and pipeline.simplify:
            pipeline.simplify.merge(result.pipeline.simplify)
        if detection is None:
            detection = result.detection
        if result.status == UNSAT:
            base.status = UNSAT
            base.detection = detection
            base.encode_seconds = encode_seconds
            base.solve_seconds = solve_seconds
            return base
        if result.status == UNKNOWN or result.coloring is None:
            base.status = UNKNOWN
            base.detection = detection
            base.encode_seconds = encode_seconds
            base.solve_seconds = solve_seconds
            return base
        if result.status == SAT:
            status = SAT  # feasible but optimality not proved
        pipeline.components_solved += 1
        for local, color in normalize_coloring(result.coloring).items():
            kernel_coloring[component[local]] = color
    coloring = extend_coloring(kernel, kernel_coloring)
    if coloring:
        check_proper(graph, coloring)
    base.status = status
    base.num_colors = len(set(coloring.values()))
    base.coloring = coloring
    base.detection = detection
    base.encode_seconds = encode_seconds
    base.solve_seconds = solve_seconds
    return base


def _package(
    encoding: ColoringEncoding,
    result: OptimizeResult,
    solve_seconds: float,
    encode_seconds: float,
    report: Optional[SymmetryReport],
    solver: str,
    sbp_kind: str,
    instance_dependent: bool,
    pipeline: Optional[PipelineInfo] = None,
) -> ColoringSolveResult:
    coloring = None
    num_colors = None
    if result.best_model is not None:
        coloring = decode_coloring(encoding, result.best_model)
        check_proper(encoding.graph, coloring)
        num_colors = len(set(coloring.values()))
        if result.best_value is not None and num_colors != result.best_value:
            raise AssertionError(
                f"decoded coloring uses {num_colors} colors but solver "
                f"reported {result.best_value}"
            )
    return ColoringSolveResult(
        status=result.status,
        num_colors=num_colors,
        coloring=coloring,
        solve_seconds=solve_seconds,
        encode_seconds=encode_seconds,
        detection=report,
        solver=solver,
        sbp_kind=sbp_kind,
        instance_dependent=instance_dependent,
        pipeline=pipeline,
    )


def find_chromatic_number(
    graph: Graph,
    solver: str = "pbs2",
    sbp_kind: str = "nu",
    instance_dependent: bool = False,
    time_limit: Optional[float] = None,
    max_colors: Optional[int] = None,
    preprocess: bool = True,
    reduce: bool = True,
    incremental: bool = True,
) -> ColoringSolveResult:
    """Convenience: pick K from DSATUR, then minimize exactly.

    ``max_colors`` caps K (the paper's application-driven fixed budget);
    by default K is the DSATUR upper bound, which always suffices.  The
    production path runs the full simplification pipeline by default:
    low-degree peeling + component split before encoding, CNF
    simplification after encoding (disable with ``preprocess=False`` /
    ``reduce=False`` to measure the raw encodings).
    """
    _, ub = dsatur(graph)
    k = ub if max_colors is None else min(max_colors, max(ub, 1))
    if graph.num_vertices == 0:
        return ColoringSolveResult(status=OPTIMAL, num_colors=0, coloring={})
    k = max(k, 1)
    return solve_coloring(
        graph,
        k,
        solver=solver,
        sbp_kind=sbp_kind,
        instance_dependent=instance_dependent,
        time_limit=time_limit,
        preprocess=preprocess,
        reduce=reduce,
        incremental=incremental,
    )
