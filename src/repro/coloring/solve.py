"""High-level exact coloring API: the paper's full pipeline in one call.

``solve_coloring`` reproduces the experimental flow of Section 4:

1. encode K-coloring as 0-1 ILP (Section 2.5);
2. optionally append instance-independent SBPs (NU/CA/LI/SC, Section 3);
3. optionally run symmetry detection on the resulting formula and
   append instance-dependent lex-leader SBPs (the Shatter flow);
4. minimize the number of used colors with a chosen solver profile
   (PBS II / Galena / Pueblo presets, or the generic LP-based branch
   and bound standing in for CPLEX).

``find_chromatic_number`` wraps it with sensible defaults and DSATUR /
clique bounds, following the bound-seeding procedure the paper sketches
in Section 4.1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..graphs.cliques import clique_lower_bound
from ..graphs.coloring_heuristics import dsatur
from ..graphs.graph import Graph
from ..ilp.branch_and_bound import BranchAndBoundSolver
from ..pb.presets import get_preset
from ..pb.optimizer import minimize
from ..sat.result import OPTIMAL, OptimizeResult, UNKNOWN, UNSAT
from ..sbp.instance_independent import apply_sbp
from ..sbp.lex_leader import add_symmetry_breaking_predicates
from ..symmetry.detect import SymmetryReport, detect_symmetries
from .encoding import ColoringEncoding, decode_coloring, encode_coloring
from .verify import check_proper

SOLVER_NAMES = ("pbs2", "galena", "pueblo", "cplex-bb")


@dataclass
class ColoringSolveResult:
    """Everything a table row needs about one solve."""

    status: str  # OPTIMAL / SAT / UNSAT / UNKNOWN
    num_colors: Optional[int] = None
    coloring: Optional[Dict[int, int]] = None
    solve_seconds: float = 0.0
    encode_seconds: float = 0.0
    detection: Optional[SymmetryReport] = None
    solver: str = ""
    sbp_kind: str = "none"
    instance_dependent: bool = False

    @property
    def solved(self) -> bool:
        """Definitive outcome (optimum proved or infeasibility proved)."""
        return self.status in (OPTIMAL, UNSAT)


def prepare_formula(
    graph: Graph,
    num_colors: int,
    sbp_kind: str = "none",
    instance_dependent: bool = False,
    detection_node_limit: Optional[int] = 50000,
    detection_cache: Optional[Dict] = None,
) -> "tuple[ColoringEncoding, Optional[SymmetryReport]]":
    """Encode + SBPs; returns the encoding and the detection report.

    The detection report is ``None`` unless instance-dependent SBPs were
    requested.  ``detection_cache`` (an ordinary dict, keyed by
    ``(graph.name, num_colors, sbp_kind)``) lets callers reuse detection
    results across solver runs on the same deterministic encoding — the
    encoding depends only on the graph and parameters, so the cache is
    exact, not approximate.  Unnamed graphs are never cached.
    """
    encoding = encode_coloring(graph, num_colors)
    encoding = apply_sbp(encoding, sbp_kind)
    report: Optional[SymmetryReport] = None
    if instance_dependent:
        key = (graph.name, num_colors, sbp_kind) if graph.name else None
        if detection_cache is not None and key is not None and key in detection_cache:
            report = detection_cache[key]
        else:
            report = detect_symmetries(
                encoding.formula, node_limit=detection_node_limit, compute_order=False
            )
            if detection_cache is not None and key is not None:
                detection_cache[key] = report
        add_symmetry_breaking_predicates(encoding.formula, report.generators)
    return encoding, report


def solve_coloring(
    graph: Graph,
    num_colors: int,
    solver: str = "pbs2",
    sbp_kind: str = "none",
    instance_dependent: bool = False,
    time_limit: Optional[float] = None,
    conflict_limit: Optional[int] = None,
    use_bounds: bool = True,
    detection_node_limit: Optional[int] = 50000,
    detection_cache: Optional[Dict] = None,
) -> ColoringSolveResult:
    """Minimize the colors used on ``graph`` within a budget of ``num_colors``.

    Status is UNSAT when the graph is not ``num_colors``-colorable —
    the paper's "chromatic number > K" rows.
    """
    if solver not in SOLVER_NAMES:
        raise ValueError(f"unknown solver {solver!r}; expected one of {SOLVER_NAMES}")
    t0 = time.monotonic()
    encoding, report = prepare_formula(
        graph,
        num_colors,
        sbp_kind=sbp_kind,
        instance_dependent=instance_dependent,
        detection_node_limit=detection_node_limit,
        detection_cache=detection_cache,
    )
    encode_seconds = time.monotonic() - t0

    upper = None
    lower = 0
    if use_bounds:
        _, heuristic_colors = dsatur(graph)
        if heuristic_colors <= num_colors:
            upper = heuristic_colors
        lower = clique_lower_bound(graph)

    t1 = time.monotonic()
    if solver == "cplex-bb":
        result = BranchAndBoundSolver().optimize(encoding.formula, time_limit=time_limit)
    else:
        preset = get_preset(solver)
        result = minimize(
            encoding.formula,
            strategy=preset.optimization_strategy,
            solver_factory=preset.solver_factory(),
            time_limit=time_limit,
            conflict_limit=conflict_limit,
            upper_bound_hint=upper,
            lower_bound=lower,
        )
    solve_seconds = time.monotonic() - t1
    return _package(encoding, result, solve_seconds, encode_seconds, report,
                    solver, sbp_kind, instance_dependent)


def _package(
    encoding: ColoringEncoding,
    result: OptimizeResult,
    solve_seconds: float,
    encode_seconds: float,
    report: Optional[SymmetryReport],
    solver: str,
    sbp_kind: str,
    instance_dependent: bool,
) -> ColoringSolveResult:
    coloring = None
    num_colors = None
    if result.best_model is not None:
        coloring = decode_coloring(encoding, result.best_model)
        check_proper(encoding.graph, coloring)
        num_colors = len(set(coloring.values()))
        if result.best_value is not None and num_colors != result.best_value:
            raise AssertionError(
                f"decoded coloring uses {num_colors} colors but solver "
                f"reported {result.best_value}"
            )
    return ColoringSolveResult(
        status=result.status,
        num_colors=num_colors,
        coloring=coloring,
        solve_seconds=solve_seconds,
        encode_seconds=encode_seconds,
        detection=report,
        solver=solver,
        sbp_kind=sbp_kind,
        instance_dependent=instance_dependent,
    )


def find_chromatic_number(
    graph: Graph,
    solver: str = "pbs2",
    sbp_kind: str = "nu",
    instance_dependent: bool = False,
    time_limit: Optional[float] = None,
    max_colors: Optional[int] = None,
) -> ColoringSolveResult:
    """Convenience: pick K from DSATUR, then minimize exactly.

    ``max_colors`` caps K (the paper's application-driven fixed budget);
    by default K is the DSATUR upper bound, which always suffices.
    """
    _, ub = dsatur(graph)
    k = ub if max_colors is None else min(max_colors, max(ub, 1))
    if graph.num_vertices == 0:
        return ColoringSolveResult(status=OPTIMAL, num_colors=0, coloring={})
    k = max(k, 1)
    return solve_coloring(
        graph,
        k,
        solver=solver,
        sbp_kind=sbp_kind,
        instance_dependent=instance_dependent,
        time_limit=time_limit,
    )
