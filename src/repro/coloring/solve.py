"""Legacy exact-coloring entry points (deprecation shims over ``repro.api``).

``solve_coloring`` and ``find_chromatic_number`` were the repo's
original high-level API: one call running the paper's full pipeline —
kernelization, 0-1 ILP encoding, instance-independent SBPs, CNF
simplification, optional symmetry detection, and color minimization
with a named solver profile.  Over PRs 1–2 they accumulated 10+ kwargs
each; the pipeline now lives behind the composable public API in
:mod:`repro.api` (Problem value objects, a staged ``Pipeline`` builder,
a backend registry, and reusable ``Session`` objects).

Both functions remain as thin deprecation shims: they translate their
historical kwargs into a :class:`repro.api.PipelineConfig`, run the
problem through :class:`repro.api.Pipeline`, and repackage the
structured :class:`repro.api.Result` as the historical
:class:`ColoringSolveResult`.  New code should use ``repro.api``::

    from repro.api import BudgetedOptimize, ChromaticProblem, Pipeline

    pipe = Pipeline().symmetry(sbp_kind="nu+sc").solve(backend="pb-pbs2")
    result = pipe.run(BudgetedOptimize(graph, max_colors=7))
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

from ..sat.preprocessing import SimplifyStats
from ..sat.result import OPTIMAL, UNSAT
from ..sbp.instance_independent import apply_sbp
from ..symmetry.detect import SymmetryReport
from .encoding import ColoringEncoding, encode_coloring

SOLVER_NAMES = ("pbs2", "galena", "pueblo", "cplex-bb")


@dataclass
class PipelineInfo:
    """What the simplification stages did during one solve."""

    preprocess: bool = False
    reduce: bool = False
    simplify: Optional[SimplifyStats] = None
    original_vertices: int = 0
    kernel_vertices: int = 0
    peeled_vertices: int = 0
    components_solved: int = 0


@dataclass
class ColoringSolveResult:
    """Everything a table row needs about one solve."""

    status: str  # OPTIMAL / SAT / UNSAT / UNKNOWN
    num_colors: Optional[int] = None
    coloring: Optional[Dict[int, int]] = None
    solve_seconds: float = 0.0
    encode_seconds: float = 0.0
    detection: Optional[SymmetryReport] = None
    solver: str = ""
    sbp_kind: str = "none"
    instance_dependent: bool = False
    pipeline: Optional[PipelineInfo] = None

    @property
    def solved(self) -> bool:
        """Definitive outcome (optimum proved or infeasibility proved)."""
        return self.status in (OPTIMAL, UNSAT)


def prepare_formula(
    graph,
    num_colors: int,
    sbp_kind: str = "none",
    instance_dependent: bool = False,
    detection_node_limit: Optional[int] = 50000,
    detection_cache: Optional[Dict] = None,
) -> "tuple[ColoringEncoding, Optional[SymmetryReport]]":
    """Encode + SBPs; returns the encoding and the detection report.

    The detection report is ``None`` unless instance-dependent SBPs were
    requested.  ``detection_cache`` (a plain dict, or a
    ``multiprocessing.Manager().dict()`` shared across batch workers)
    lets callers reuse detection results across solver runs on the same
    deterministic encoding — keys derive from the graph's *canonical
    certificate* plus the encoding parameters, so isomorphic inputs
    share one detection run and the cache is exact, not approximate.

    This helper keeps the historical encode-then-detect order for
    callers that want the raw encoding; the standard pipeline
    (:mod:`repro.api`) detects on the *simplified* formula by default.
    """
    encoding = encode_coloring(graph, num_colors)
    encoding = apply_sbp(encoding, sbp_kind)
    report: Optional[SymmetryReport] = None
    if instance_dependent:
        from ..api.pipeline import _detect_and_break, _detection_key

        key = (
            _detection_key(graph, num_colors, sbp_kind, False,
                           detection_node_limit)
            if detection_cache is not None else None
        )
        report = _detect_and_break(
            encoding.formula, key, detection_node_limit, detection_cache
        )
    return encoding, report


def _legacy_pipeline(
    solver: str,
    sbp_kind: str,
    instance_dependent: bool,
    time_limit: Optional[float],
    conflict_limit: Optional[int],
    use_bounds: bool,
    detection_node_limit: Optional[int],
    preprocess: bool,
    reduce: bool,
    incremental: bool,
):
    """Translate the historical kwargs into an API pipeline."""
    from ..api import Pipeline

    if solver not in SOLVER_NAMES:
        raise ValueError(f"unknown solver {solver!r}; expected one of {SOLVER_NAMES}")
    return (
        Pipeline()
        .reduce(reduce)
        .symmetry(
            sbp_kind=sbp_kind,
            instance_dependent=instance_dependent,
            detection_node_limit=detection_node_limit,
        )
        .simplify(preprocess)
        .solve(
            backend=solver,
            time_limit=time_limit,
            conflict_limit=conflict_limit,
            incremental=incremental,
            use_bounds=use_bounds,
        )
    )


def _to_legacy_result(
    result,
    solver: str,
    sbp_kind: str,
    instance_dependent: bool,
) -> ColoringSolveResult:
    """Repackage an API :class:`repro.api.Result` in the historical shape."""
    return ColoringSolveResult(
        status=result.status,
        num_colors=result.num_colors,
        coloring=result.coloring,
        solve_seconds=result.solve_seconds,
        encode_seconds=result.encode_seconds,
        detection=result.detection,
        solver=solver,
        sbp_kind=sbp_kind,
        instance_dependent=instance_dependent,
        pipeline=result.pipeline,
    )


def solve_coloring(
    graph,
    num_colors: int,
    solver: str = "pbs2",
    sbp_kind: str = "none",
    instance_dependent: bool = False,
    time_limit: Optional[float] = None,
    conflict_limit: Optional[int] = None,
    use_bounds: bool = True,
    detection_node_limit: Optional[int] = 50000,
    detection_cache: Optional[Dict] = None,
    preprocess: bool = True,
    reduce: bool = False,
    incremental: bool = True,
) -> ColoringSolveResult:
    """Minimize the colors used on ``graph`` within a budget of ``num_colors``.

    .. deprecated::
        Use :class:`repro.api.Pipeline` with
        :class:`repro.api.BudgetedOptimize` — this shim delegates to it.

    Status is UNSAT when the graph is not ``num_colors``-colorable —
    the paper's "chromatic number > K" rows (a budget of zero is UNSAT
    for every non-empty graph).  ``preprocess`` simplifies the clause
    database after encoding; ``reduce`` kernelizes the graph (peeling +
    component split) before encoding.
    """
    warnings.warn(
        "solve_coloring is deprecated; use repro.api "
        "(Pipeline().run(BudgetedOptimize(graph, max_colors)))",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import BudgetedOptimize

    pipeline = _legacy_pipeline(
        solver, sbp_kind, instance_dependent, time_limit, conflict_limit,
        use_bounds, detection_node_limit, preprocess, reduce, incremental,
    )
    result = pipeline.run(
        BudgetedOptimize(graph, num_colors), detection_cache=detection_cache
    )
    return _to_legacy_result(result, solver, sbp_kind, instance_dependent)


def find_chromatic_number(
    graph,
    solver: str = "pbs2",
    sbp_kind: str = "nu",
    instance_dependent: bool = False,
    time_limit: Optional[float] = None,
    max_colors: Optional[int] = None,
    preprocess: bool = True,
    reduce: bool = True,
    incremental: bool = True,
) -> ColoringSolveResult:
    """Chromatic number via the 0-1 ILP pipeline (DSATUR-seeded budget).

    .. deprecated::
        Use :class:`repro.api.Pipeline` with
        :class:`repro.api.ChromaticProblem` — this shim delegates to it.

    ``max_colors`` caps the budget (the paper's application-driven fixed
    K).  A cap below the chromatic number makes the result UNSAT — in
    particular ``max_colors=0`` is infeasible for every non-empty graph,
    never silently clamped up to a 1-color solve.
    """
    warnings.warn(
        "find_chromatic_number is deprecated; use repro.api "
        "(Pipeline().run(ChromaticProblem(graph, max_colors)))",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import ChromaticProblem

    pipeline = _legacy_pipeline(
        solver, sbp_kind, instance_dependent, time_limit, None,
        True, 50000, preprocess, reduce, incremental,
    )
    result = pipeline.run(ChromaticProblem(graph, max_colors))
    return _to_legacy_result(result, solver, sbp_kind, instance_dependent)
