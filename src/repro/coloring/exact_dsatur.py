"""Exact graph coloring by DSATUR-style branch and bound.

The problem-specific baseline of the exact-coloring literature the
paper discusses (Brown 1972, Brelaz 1979, Kubale & Jackowski 1985):
implicit enumeration over vertex color assignments, always branching on
the most saturated vertex, bounded below by a clique and above by the
incumbent.  Used here (a) as an independent cross-check of the 0-1 ILP
pipeline's chromatic numbers and (b) as the "specialized algorithm"
comparison point of the paper's Section 4.3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..graphs.cliques import greedy_clique
from ..graphs.coloring_heuristics import dsatur
from ..graphs.graph import Graph
from ..resilience import Deadline


@dataclass
class ExactColoringResult:
    """Outcome of an exact chromatic-number computation."""

    chromatic_number: Optional[int]
    coloring: Optional[Dict[int, int]]  # colors are 1-based
    optimal: bool
    nodes_explored: int
    time_seconds: float


def exact_chromatic_number(
    graph: Graph,
    time_limit: Optional[float] = None,
    node_limit: Optional[int] = None,
) -> ExactColoringResult:
    """Compute the chromatic number by DSATUR branch and bound.

    On a resource limit the incumbent (DSATUR or better) is returned
    with ``optimal=False``.
    """
    start = time.monotonic()
    deadline = Deadline.after(time_limit)
    n = graph.num_vertices
    if n == 0:
        return ExactColoringResult(0, {}, True, 0, 0.0)

    heuristic, ub = dsatur(graph)
    best_coloring = {v: c + 1 for v, c in heuristic.items()}
    best = ub
    clique = greedy_clique(graph)
    lb = max(1, len(clique))

    # Seed: pre-color the clique (any exact solution can be relabeled so
    # the clique takes colors 1..|clique|, so this loses no solutions).
    assignment: Dict[int, int] = {}
    for i, v in enumerate(clique):
        assignment[v] = i + 1

    nodes = [0]
    timed_out = [False]
    adj = [graph.neighbors(v) for v in range(n)]

    def out_of_budget() -> bool:
        if node_limit is not None and nodes[0] > node_limit:
            return True
        if deadline.bounded and (nodes[0] & 255) == 0:
            if deadline.expired():
                return True
        return False

    def select_vertex() -> int:
        best_v, best_key = -1, None
        for v in range(n):
            if v in assignment:
                continue
            sat = len({assignment[w] for w in adj[v] if w in assignment})
            degree = len(adj[v])
            key = (-sat, -degree, v)
            if best_key is None or key < best_key:
                best_v, best_key = v, key
        return best_v

    def recurse(colors_used: int) -> None:
        nonlocal best, best_coloring
        if out_of_budget():
            timed_out[0] = True
            return
        nodes[0] += 1
        if colors_used >= best:
            return
        if len(assignment) == n:
            best = colors_used
            best_coloring = dict(assignment)
            return
        v = select_vertex()
        forbidden = {assignment[w] for w in adj[v] if w in assignment}
        limit = min(colors_used + 1, best - 1)
        for color in range(1, limit + 1):
            if color in forbidden:
                continue
            assignment[v] = color
            recurse(max(colors_used, color))
            del assignment[v]
            if timed_out[0]:
                return
            if best <= lb:
                return

    recurse(len(clique))
    elapsed = time.monotonic() - start
    optimal = not timed_out[0] or best <= lb
    return ExactColoringResult(best, best_coloring, optimal, nodes[0], elapsed)
