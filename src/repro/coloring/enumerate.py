"""Solution enumeration: count/list colorings a formula admits.

Symmetry breaking is fundamentally about *how many* equivalent
solutions survive — Figure 1 of the paper counts them by hand on a
4-vertex example.  This module does it mechanically for any instance,
by repeatedly solving and adding blocking clauses over the indicator
variables (auxiliary variables are projected away, so two models that
differ only in SBP chain variables count once).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..core.formula import Formula
from ..pb.engine import PBSolver
from .encoding import ColoringEncoding, decode_coloring


def enumerate_models(
    formula: Formula,
    project_onto: Sequence[int],
    limit: Optional[int] = None,
    conflict_limit_per_model: Optional[int] = None,
) -> Iterator[Dict[int, bool]]:
    """Yield models projected onto ``project_onto`` variables.

    Each yielded assignment is distinct on the projection variables;
    enumeration blocks the projection, not the full model.  ``limit``
    caps the number of models (None = all).
    """
    variables = list(dict.fromkeys(project_onto))
    if not variables:
        raise ValueError("projection set must be non-empty")
    solver = PBSolver()
    if not solver.add_formula(formula):
        return
    count = 0
    while limit is None or count < limit:
        result = solver.solve(conflict_limit=conflict_limit_per_model)
        if not result.is_sat:
            return
        projection = {v: result.model[v] for v in variables}
        yield projection
        count += 1
        blocking = [(-v if projection[v] else v) for v in variables]
        if not solver.add_clause(blocking):
            return


def count_colorings(
    encoding: ColoringEncoding,
    optimal_only: bool = False,
    limit: Optional[int] = None,
) -> int:
    """Count distinct x-variable assignments the encoding admits.

    With ``optimal_only`` the count is restricted to colorings using the
    minimum number of colors (found first with a dedicated solve).
    ``limit`` caps the enumeration for large solution spaces.
    """
    formula = encoding.formula.copy()
    x_vars = sorted(encoding.x_var.values())
    if optimal_only:
        from ..pb.optimizer import minimize_linear

        best = minimize_linear(formula)
        if not best.is_optimal:
            raise RuntimeError(f"could not establish the optimum: {best.status}")
        # Fix the number of used colors to the optimum.
        y_terms = [(1, encoding.y(k)) for k in range(1, encoding.num_colors + 1)]
        formula.add_pb(y_terms, "=", best.best_value)
    return sum(1 for _ in enumerate_models(formula, x_vars, limit=limit))


def distinct_colorings(
    encoding: ColoringEncoding,
    limit: Optional[int] = None,
) -> List[Dict[int, int]]:
    """Materialize the admitted colorings (vertex -> color maps)."""
    formula = encoding.formula.copy()
    x_vars = sorted(encoding.x_var.values())
    out: List[Dict[int, int]] = []
    for projection in enumerate_models(formula, x_vars, limit=limit):
        # decode_coloring needs y values too; reconstruct from x.
        model = dict(projection)
        for k in range(1, encoding.num_colors + 1):
            used = any(
                projection[encoding.x(v, k)]
                for v in range(encoding.graph.num_vertices)
            )
            model[encoding.y(k)] = used
        out.append(decode_coloring(encoding, model))
    return out
