"""Pure-CNF coloring pipeline: decision K-coloring + repeated SAT calls.

The paper (Section 2.3) contrasts 0-1 ILP solvers, which optimize
directly, with "repeatedly solving instances of the k-coloring using a
SAT solver, with the value of k being updated after each call", and
argues the ILP route tends to win.  This module implements the SAT
route so that claim can be measured:

* :func:`encode_k_coloring_cnf` — the decision encoding compiled to
  pure CNF (exactly-one constraints via a chosen cardinality encoding);
* :func:`sat_k_colorable` — one decision call on the clause-only CDCL
  solver, with optional CNF preprocessing (full equisatisfiable
  simplification; the forced assignment and eliminated variables are
  folded back into the model before decoding) and optional graph
  kernelization (peeling + component split via
  :func:`repro.coloring.reduce.solve_with_reduction`);
* :func:`chromatic_number_sat` — chromatic number by descending linear
  or binary search over K, one fresh SAT instance per query (the
  paper's Section 4.1 bound-tightening procedure), with both
  simplification stages on by default.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.cnf_encodings import encode_exactly_one_pairwise, encode_at_most_k_sequential
from ..core.formula import Formula
from ..graphs.cliques import clique_lower_bound
from ..graphs.coloring_heuristics import dsatur
from ..graphs.graph import Graph
from ..sat.cdcl import CDCLSolver
from ..sat.preprocessing import preprocess as preprocess_cnf
from ..sat.result import SAT, UNKNOWN, UNSAT
from ..sbp.instance_independent import SBP_KINDS
from .reduce import solve_with_reduction


def encode_k_coloring_cnf(
    graph: Graph,
    k: int,
    amo_encoding: str = "pairwise",
    sbp_kind: str = "none",
) -> Tuple[Formula, Dict[Tuple[int, int], int]]:
    """Pure-CNF decision encoding of K-colorability.

    Returns ``(formula, x_vars)`` with ``x_vars[(v, color)]`` the
    indicator variable (colors 1..k).  ``amo_encoding`` selects how the
    per-vertex exactly-one constraint is compiled: ``"pairwise"`` or
    ``"sequential"``.  ``sbp_kind`` supports the CNF-expressible subset
    of the paper's constructions: ``"none"``, ``"nu"`` (on usage
    variables added for the purpose) and ``"sc"``.
    """
    if sbp_kind not in ("none", "nu", "sc", "nu+sc"):
        raise ValueError(
            f"CNF pipeline supports none/nu/sc/nu+sc, got {sbp_kind!r} "
            "(CA needs PB constraints; LI needs the optimization encoding)"
        )
    formula = Formula()
    x: Dict[Tuple[int, int], int] = {}
    n = graph.num_vertices
    for v in range(n):
        for c in range(1, k + 1):
            x[(v, c)] = formula.new_var(("x", v, c))
    for v in range(n):
        lits = [x[(v, c)] for c in range(1, k + 1)]
        if amo_encoding == "pairwise":
            encode_exactly_one_pairwise(formula, lits)
        elif amo_encoding == "sequential":
            formula.add_clause(lits)
            encode_at_most_k_sequential(formula, lits, 1)
        else:
            raise ValueError(f"unknown at-most-one encoding {amo_encoding!r}")
    for a, b in graph.edges():
        for c in range(1, k + 1):
            formula.add_clause([-x[(a, c)], -x[(b, c)]])
    if sbp_kind in ("nu", "nu+sc"):
        # Usage variables y_c <- any x[v][c]; chain y_{c+1} -> y_c.
        y = {c: formula.new_var(("y", c)) for c in range(1, k + 1)}
        for c in range(1, k + 1):
            for v in range(n):
                formula.add_clause([-x[(v, c)], y[c]])
            formula.add_clause([-y[c]] + [x[(v, c)] for v in range(n)])
        for c in range(1, k):
            formula.add_clause([-y[c + 1], y[c]])
    if sbp_kind in ("sc", "nu+sc") and n > 0:
        vl = max(graph.vertices(), key=lambda v: (graph.degree(v), -v))
        formula.add_clause([x[(vl, 1)]])
        neighbors = graph.neighbors(vl)
        if neighbors and k >= 2:
            vl2 = max(neighbors, key=lambda v: (graph.degree(v), -v))
            formula.add_clause([x[(vl2, 2)]])
    return formula, x


def sat_k_colorable(
    graph: Graph,
    k: int,
    time_limit: Optional[float] = None,
    amo_encoding: str = "pairwise",
    sbp_kind: str = "none",
    preprocess: bool = True,
    reduce: bool = False,
) -> Tuple[str, Optional[Dict[int, int]]]:
    """Decide K-colorability with the CNF CDCL solver.

    Returns ``(status, coloring)``; the coloring (vertex -> color) is
    present when status is SAT.  ``preprocess`` runs the full CNF
    preprocessor on the encoding and reconstructs the model afterwards
    (``decode`` always sees a total assignment); ``reduce`` peels
    vertices of degree < K and splits components before encoding, which
    is exact for the decision problem.
    """
    if k <= 0:
        return (UNSAT if graph.num_vertices else SAT), ({} if not graph.num_vertices else None)
    if reduce:
        start = time.monotonic()

        def decide(sub: Graph, kk: int) -> Tuple[str, Optional[Dict[int, int]]]:
            # The budget is shared by all kernel components, not per
            # component — hand each one only what is left.
            remaining = None
            if time_limit is not None:
                remaining = max(0.0, time_limit - (time.monotonic() - start))
            return sat_k_colorable(
                sub, kk, time_limit=remaining, amo_encoding=amo_encoding,
                sbp_kind=sbp_kind, preprocess=preprocess, reduce=False,
            )

        reduced = solve_with_reduction(graph, k, decide)
        return reduced.status, reduced.coloring
    formula, x = encode_k_coloring_cnf(graph, k, amo_encoding, sbp_kind)
    if preprocess:
        pre = preprocess_cnf(formula)
        if pre.is_unsat:
            return UNSAT, None
        if pre.formula.clauses:
            solver = CDCLSolver(num_vars=pre.formula.num_vars)
            if not solver.add_formula(pre.formula):
                return UNSAT, None
            result = solver.solve(time_limit=time_limit)
            if not result.is_sat:
                return result.status, None
            model = pre.extend_model(result.model)
        else:
            model = pre.extend_model({})  # preprocessing solved it
    else:
        solver = CDCLSolver(num_vars=formula.num_vars)
        if not solver.add_formula(formula):
            return UNSAT, None
        result = solver.solve(time_limit=time_limit)
        if not result.is_sat:
            return result.status, None
        model = result.model
    coloring = {}
    for v in range(graph.num_vertices):
        for c in range(1, k + 1):
            if model[x[(v, c)]]:
                coloring[v] = c
                break
    return SAT, coloring


@dataclass
class SatPipelineResult:
    """Outcome of the repeated-SAT chromatic-number search."""

    status: str  # OPTIMAL / SAT (bound not proved) / UNKNOWN
    chromatic_number: Optional[int]
    coloring: Optional[Dict[int, int]]
    sat_calls: int
    time_seconds: float


def chromatic_number_sat(
    graph: Graph,
    strategy: str = "linear",
    time_limit: Optional[float] = None,
    amo_encoding: str = "pairwise",
    sbp_kind: str = "none",
    preprocess: bool = True,
    reduce: bool = True,
) -> SatPipelineResult:
    """Chromatic number via repeated CNF-SAT decision calls.

    ``strategy`` is ``"linear"`` (tighten from the DSATUR bound, the
    paper's suggestion for small bounds) or ``"binary"`` (bisect between
    the clique bound and DSATUR, its suggestion otherwise).  Each
    decision call runs the simplification pipeline (kernelization +
    CNF preprocessing) unless disabled.
    """
    if strategy not in ("linear", "binary"):
        raise ValueError(f"unknown strategy {strategy!r}")
    start = time.monotonic()
    n = graph.num_vertices
    if n == 0:
        return SatPipelineResult("OPTIMAL", 0, {}, 0, 0.0)
    heuristic_coloring, ub = dsatur(graph)
    best = {v: c + 1 for v, c in heuristic_coloring.items()}
    lb = max(1, clique_lower_bound(graph))
    calls = 0

    def remaining() -> Optional[float]:
        if time_limit is None:
            return None
        return time_limit - (time.monotonic() - start)

    def finish(status: str, k: int) -> SatPipelineResult:
        return SatPipelineResult(status, k, best, calls, time.monotonic() - start)

    if strategy == "linear":
        k = ub - 1
        while k >= lb:
            budget = remaining()
            if budget is not None and budget <= 0:
                return finish(SAT, k + 1)
            calls += 1
            status, coloring = sat_k_colorable(
                graph, k, time_limit=budget,
                amo_encoding=amo_encoding, sbp_kind=sbp_kind,
                preprocess=preprocess, reduce=reduce,
            )
            if status == UNKNOWN:
                return finish(SAT, k + 1)
            if status == UNSAT:
                return finish("OPTIMAL", k + 1)
            best = coloring
            k = len(set(coloring.values())) - 1
        return finish("OPTIMAL", lb)

    lo, hi = lb, ub
    while lo < hi:
        mid = (lo + hi) // 2
        budget = remaining()
        if budget is not None and budget <= 0:
            return finish(SAT, hi)
        calls += 1
        status, coloring = sat_k_colorable(
            graph, mid, time_limit=budget,
            amo_encoding=amo_encoding, sbp_kind=sbp_kind,
            preprocess=preprocess, reduce=reduce,
        )
        if status == UNKNOWN:
            return finish(SAT, hi)
        if status == UNSAT:
            lo = mid + 1
        else:
            best = coloring
            hi = min(len(set(coloring.values())), mid)
    return finish("OPTIMAL", hi)
