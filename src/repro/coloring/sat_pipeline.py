"""Pure-CNF coloring pipeline: decision K-coloring + repeated SAT calls.

The paper (Section 2.3) contrasts 0-1 ILP solvers, which optimize
directly, with "repeatedly solving instances of the k-coloring using a
SAT solver, with the value of k being updated after each call", and
argues the ILP route tends to win.  This module implements the SAT
route so that claim can be measured:

* :func:`encode_k_coloring_cnf` — the decision encoding compiled to
  pure CNF (exactly-one constraints via a chosen cardinality encoding);
* :func:`sat_k_colorable` — one decision call on the clause-only CDCL
  solver, with optional CNF preprocessing (full equisatisfiable
  simplification; the forced assignment and eliminated variables are
  folded back into the model before decoding) and optional graph
  kernelization (peeling + component split via
  :func:`repro.coloring.reduce.solve_with_reduction`);
* :class:`IncrementalKSearch` — the **incremental** engine for the
  paper's Section 4.1 bound-tightening procedure: the graph is encoded
  *once* at the upper bound with per-color activation literals
  (:func:`repro.coloring.encoding.add_color_activation_literals`), and
  every K query becomes ``solve(assumptions=[-a_{k+1}, ..., -a_ub])``
  on one persistent :class:`~repro.sat.cdcl.CDCLSolver`, so learned
  clauses, saved phases and VSIDS activity carry over between queries.
  UNSAT answers return an unsat core over colors (failed assumptions),
  which the binary strategy uses to skip dead K values;
* :func:`chromatic_number_sat` — chromatic number by descending linear
  or binary search over K.  ``incremental=True`` (the default) drives
  the whole descent through one persistent solver; ``incremental=False``
  restores the historical one-fresh-SAT-instance-per-query behaviour
  for comparison.  Both simplification stages are on by default (the
  incremental path kernelizes once at the clique bound and runs the
  model-preserving clause simplification, which cannot eliminate the
  activation variables the assumptions refer to).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.cnf_encodings import encode_exactly_one_pairwise, encode_at_most_k_sequential
from ..core.formula import Formula
from ..graphs.cliques import clique_lower_bound
from ..graphs.coloring_heuristics import dsatur
from ..graphs.graph import Graph
from ..obs.hooks import active_tracer
from ..obs.metrics import get_registry
from ..resilience import Deadline
from ..sat.factory import new_solver
from ..sat.preprocessing import preprocess as preprocess_cnf
from ..sat.preprocessing import simplify_formula
from ..sat.result import SAT, UNKNOWN, UNSAT, SolverStats
from ..sat.vsids import VSIDS
from .encoding import add_color_activation_literals
from .reduce import extend_coloring, peel_low_degree, solve_with_reduction


def _note_deadline_expired(where: str = "descent") -> None:
    """Record a budget expiry as a traced event and a counter."""
    tracer = active_tracer()
    if tracer is not None:
        tracer.deadline_expired(where)
    get_registry().inc("deadline_expired_total", where=where)


def encode_k_coloring_cnf(
    graph: Graph,
    k: int,
    amo_encoding: str = "pairwise",
    sbp_kind: str = "none",
) -> Tuple[Formula, Dict[Tuple[int, int], int]]:
    """Pure-CNF decision encoding of K-colorability.

    Returns ``(formula, x_vars)`` with ``x_vars[(v, color)]`` the
    indicator variable (colors 1..k).  ``amo_encoding`` selects how the
    per-vertex exactly-one constraint is compiled: ``"pairwise"`` or
    ``"sequential"``.  ``sbp_kind`` supports the CNF-expressible subset
    of the paper's constructions: ``"none"``, ``"nu"`` (on usage
    variables added for the purpose) and ``"sc"``.
    """
    if sbp_kind not in ("none", "nu", "sc", "nu+sc"):
        raise ValueError(
            f"CNF pipeline supports none/nu/sc/nu+sc, got {sbp_kind!r} "
            "(CA needs PB constraints; LI needs the optimization encoding)"
        )
    formula = Formula()
    x: Dict[Tuple[int, int], int] = {}
    n = graph.num_vertices
    for v in range(n):
        for c in range(1, k + 1):
            x[(v, c)] = formula.new_var(("x", v, c))
    for v in range(n):
        lits = [x[(v, c)] for c in range(1, k + 1)]
        if amo_encoding == "pairwise":
            encode_exactly_one_pairwise(formula, lits)
        elif amo_encoding == "sequential":
            formula.add_clause(lits)
            encode_at_most_k_sequential(formula, lits, 1)
        else:
            raise ValueError(f"unknown at-most-one encoding {amo_encoding!r}")
    for a, b in graph.edges():
        for c in range(1, k + 1):
            formula.add_clause([-x[(a, c)], -x[(b, c)]])
    if sbp_kind in ("nu", "nu+sc"):
        # Usage variables y_c <- any x[v][c]; chain y_{c+1} -> y_c.
        y = {c: formula.new_var(("y", c)) for c in range(1, k + 1)}
        for c in range(1, k + 1):
            for v in range(n):
                formula.add_clause([-x[(v, c)], y[c]])
            formula.add_clause([-y[c]] + [x[(v, c)] for v in range(n)])
        for c in range(1, k):
            formula.add_clause([-y[c + 1], y[c]])
    if sbp_kind in ("sc", "nu+sc") and n > 0:
        vl = max(graph.vertices(), key=lambda v: (graph.degree(v), -v))
        formula.add_clause([x[(vl, 1)]])
        neighbors = graph.neighbors(vl)
        if neighbors and k >= 2:
            vl2 = max(neighbors, key=lambda v: (graph.degree(v), -v))
            formula.add_clause([x[(vl2, 2)]])
    return formula, x


def encode_k_coloring_incremental(
    graph: Graph,
    max_k: int,
    amo_encoding: str = "pairwise",
    sbp_kind: str = "none",
) -> Tuple[Formula, Dict[Tuple[int, int], int], Dict[int, int]]:
    """K-coloring encoding at ``max_k`` plus per-color activation literals.

    Returns ``(formula, x_vars, activators)``.  Assuming
    ``-activators[c]`` for every ``c > k`` restricts the encoding to a
    K-coloring instance, so one formula serves the whole descent.
    """
    formula, x = encode_k_coloring_cnf(graph, max_k, amo_encoding, sbp_kind)
    activators = add_color_activation_literals(
        formula, x, graph.num_vertices, max_k
    )
    return formula, x, activators


GROWABLE_SBP_KINDS = ("none", "sc")


def encode_k_coloring_growable(
    graph: Graph,
    max_k: int,
    sbp_kind: str = "none",
) -> Tuple[Formula, Dict[Tuple[int, int], int], Dict[int, int], int]:
    """Growable K-coloring encoding: activation literals *and* an
    at-least-one generation that can be retired when the budget rises.

    The plain incremental encoding hard-codes the color horizon in the
    per-vertex at-least-one clauses ``(x[v][1] | ... | x[v][max_k])`` —
    once loaded they force every vertex into the first ``max_k`` colors
    forever, so raising the budget would require re-encoding.  Here each
    at-least-one clause instead carries a shared *extension literal*
    ``ext``: ``(x[v][1] | ... | x[v][max_k] | ext)``.  Queries assume
    ``-ext`` (restoring the exact at-least-one semantics); growing the
    budget adds the level-0 unit ``ext`` — vacuously satisfying the old
    generation — and a fresh generation of wider clauses guarded by a
    fresh extension literal.  All other clause groups (at-most-one,
    edge conflicts, activation guards, SC pins) only ever *forbid*
    colors, so they stay valid verbatim as colors are added.

    Only the pairwise at-most-one encoding and the growth-safe SBP
    subset (``"none"``/``"sc"`` — SC pins specific colors, which new
    colors never invalidate) are supported.

    Returns ``(formula, x_vars, activators, ext)``.
    """
    if sbp_kind not in GROWABLE_SBP_KINDS:
        raise ValueError(
            f"growable encoding supports sbp_kind in {GROWABLE_SBP_KINDS}, "
            f"got {sbp_kind!r} (NU chains quantify over the color horizon)"
        )
    formula = Formula()
    x: Dict[Tuple[int, int], int] = {}
    n = graph.num_vertices
    for v in range(n):
        for c in range(1, max_k + 1):
            x[(v, c)] = formula.new_var(("x", v, c))
    ext = formula.new_var(("ext", max_k))
    for v in range(n):
        formula.add_clause([x[(v, c)] for c in range(1, max_k + 1)] + [ext])
        for c1 in range(1, max_k + 1):
            for c2 in range(c1 + 1, max_k + 1):
                formula.add_clause([-x[(v, c1)], -x[(v, c2)]])
    for a, b in graph.edges():
        for c in range(1, max_k + 1):
            formula.add_clause([-x[(a, c)], -x[(b, c)]])
    if sbp_kind == "sc" and n > 0:
        vl = max(graph.vertices(), key=lambda v: (graph.degree(v), -v))
        formula.add_clause([x[(vl, 1)]])
        neighbors = graph.neighbors(vl)
        if neighbors and max_k >= 2:
            vl2 = max(neighbors, key=lambda v: (graph.degree(v), -v))
            formula.add_clause([x[(vl2, 2)]])
    activators = add_color_activation_literals(formula, x, n, max_k)
    return formula, x, activators, ext


class IncrementalKSearch:
    """One persistent CDCL solver answering K-colorability for any K <= ub.

    The encoding is built once at ``max_k`` colors; each
    :meth:`solve_k` call assumes the activation literals of colors
    ``k+1..max_k`` negatively.  Between calls the solver keeps its
    learned clauses, saved phases and VSIDS activity, which is where the
    speedup of the incremental descent comes from: a refutation learned
    while answering one K query prunes the next one too.

    ``simplify=True`` runs the *model-preserving* clause simplification
    on the encoding before loading it (tautology/duplicate removal,
    units kept as unit clauses, subsumption, strengthening).
    ``eliminate=True`` upgrades that to the assumption-aware full
    preprocessor: the activation variables (and, on growable searches,
    the coloring variables that future ``grow_to`` clauses mention) are
    *frozen*, and pure-literal elimination plus bounded variable
    elimination run on the rest, with SAT models reconstructed through
    the elimination stack before decoding.  Running the unrestricted
    preprocessor would be unsound here — pure-literal elimination
    fixes the (pure) activation selectors the per-call assumptions
    negate.

    ``growable=True`` uses the generation-based encoding of
    :func:`encode_k_coloring_growable`, which additionally supports
    :meth:`grow_to` — raising the color budget by adding color groups
    to the live solver instead of re-encoding.  Growable searches keep
    every refutation retractable, so ``permanent`` queries (which
    disable colors with level-0 units) are rejected.
    """

    def __init__(
        self,
        graph: Graph,
        max_k: int,
        amo_encoding: str = "pairwise",
        sbp_kind: str = "none",
        simplify: bool = True,
        growable: bool = False,
        eliminate: bool = False,
    ):
        self.graph = graph
        self.max_k = max_k
        self.growable = growable
        if growable:
            if amo_encoding != "pairwise":
                raise ValueError(
                    "growable encodings support only the pairwise "
                    f"at-most-one encoding, got {amo_encoding!r}"
                )
            formula, x, activators, ext = encode_k_coloring_growable(
                graph, max_k, sbp_kind
            )
            self._ext: Optional[int] = ext
        else:
            formula, x, activators = encode_k_coloring_incremental(
                graph, max_k, amo_encoding, sbp_kind
            )
            self._ext = None
        self.x = x
        self.activators = activators
        self.root_unsat = False
        self._pre = None  # PreprocessResult when eliminate ran
        if simplify and eliminate:
            # Assumption-aware preprocessing: freeze the selectors the
            # queries assume — and on growable searches the coloring
            # variables too, since grow_to() adds clauses over them
            # (resolving a variable out is only sound while no future
            # clause mentions it).
            frozen = set(activators.values())
            if self._ext is not None:
                frozen.add(self._ext)
            if growable:
                frozen.update(x.values())
            pre = preprocess_cnf(formula, frozen=frozen)
            if pre.is_unsat:
                self.root_unsat = True
            else:
                formula = pre.formula
                self._pre = pre
        elif simplify:
            simplified, _ = simplify_formula(formula)
            if simplified is None:
                self.root_unsat = True
            else:
                formula = simplified
        self.solver = new_solver(num_vars=formula.num_vars)
        if not self.root_unsat and not self.solver.add_formula(formula):
            self.root_unsat = True
        # Fresh variables created by grow_to() start above everything the
        # encoding (pre- or post-simplification) ever allocated.
        self._top_var = max(formula.num_vars, self.solver.num_vars)
        self.stats = SolverStats()
        # Cumulative clause-group garbage collection counters (clauses /
        # learnt clauses / watcher pairs reclaimed by shrink + growth).
        self.gc_stats: Dict[str, int] = {"clauses": 0, "learned": 0, "watchers": 0}
        self._last_coloring: Optional[Dict[int, int]] = None
        # Colors above this bound have been switched off *permanently*
        # (level-0 unit clauses) by monotone-descent queries.
        self._active_ub = max_k

    def assumptions_for(self, k: int) -> List[int]:
        """The assumption literals that switch off colors above ``k``.

        On growable encodings the current generation's extension literal
        is also assumed off, restoring exact at-least-one semantics.
        """
        assumptions = [-self._ext] if self._ext is not None else []
        assumptions += [-self.activators[c] for c in range(k + 1, self.max_k + 1)]
        return assumptions

    def _new_var(self) -> int:
        self._top_var += 1
        return self._top_var

    def grow_to(self, new_max_k: int) -> None:
        """Raise the encoded color budget to ``new_max_k`` in place.

        Adds the new color groups — indicator variables, activation
        literals, activation guards, per-vertex at-most-one pairs,
        per-edge conflict clauses — directly to the persistent solver,
        retires the previous at-least-one generation with a level-0
        ``ext`` unit, and installs a wider generation under a fresh
        extension literal.  Learned clauses survive: the clause database
        only ever grows, so everything derived from it stays sound.
        """
        if not self.growable:
            raise ValueError(
                "this search was built with growable=False; construct it "
                "with growable=True to raise the color budget in place"
            )
        if new_max_k <= self.max_k:
            return
        if self.root_unsat:
            return
        solver = self.solver
        n = self.graph.num_vertices
        old_max = self.max_k
        tracer = active_tracer()
        if tracer is not None:
            tracer.grow(old_max, new_max_k)
        get_registry().inc("ksearch_grow_total")
        # Retire the old at-least-one generation (ext satisfies it).
        ok = solver.add_clause([self._ext])
        for c in range(old_max + 1, new_max_k + 1):
            for v in range(n):
                self.x[(v, c)] = self._new_var()
            self.activators[c] = self._new_var()
        for c in range(old_max + 1, new_max_k + 1):
            a_c = self.activators[c]
            for v in range(n):
                x_vc = self.x[(v, c)]
                ok = solver.add_clause([-x_vc, a_c]) and ok
                for c2 in range(1, c):
                    ok = solver.add_clause([-self.x[(v, c2)], -x_vc]) and ok
            for a, b in self.graph.edges():
                ok = solver.add_clause([-self.x[(a, c)], -self.x[(b, c)]]) and ok
        new_ext = self._new_var()
        solver._ensure_var(new_ext)
        for v in range(n):
            ok = solver.add_clause(
                [self.x[(v, c)] for c in range(1, new_max_k + 1)] + [new_ext]
            ) and ok
        solver.saved_phase[new_ext] = False
        self._ext = new_ext
        self.max_k = new_max_k
        self._active_ub = new_max_k
        if not ok:
            self.root_unsat = True
            return
        # The retired at-least-one generation is satisfied by the level-0
        # ``ext`` unit — reclaim its clauses and watchers instead of
        # leaving them as permanent dead weight in the watch lists.
        self._collect_garbage()

    def _collect_garbage(self) -> None:
        """Clause-group deletion: sweep clauses killed by level-0 facts.

        Permanent color disabling and at-least-one generation retirement
        both work by adding level-0 units; every clause of the dead
        group (activation guards, at-most-one pairs, edge conflicts,
        retired at-least-one clauses — and any learnt clause satisfied
        by the facts) becomes root-satisfied.  Delegate to the solver's
        sweep and accumulate what it reclaimed.
        """
        removed = self.solver.collect_level0_satisfied()
        registry = get_registry()
        for key, count in removed.items():
            self.gc_stats[key] += count
            registry.inc(f"ksearch_gc_{key}_total", count)

    def _prepare_heuristics(self, k: int, carry: bool) -> None:
        """Re-seed the decision heuristics for the next K query.

        Learned clauses always persist — they are the expensive state —
        but the *decision* state is re-seeded per query by default
        (``carry=False``): saved phases of the coloring variables go
        back to False (default-phase decisions then walk the
        at-least-one clauses like a greedy coloring, which measurably
        beats repairing the previous, now-infeasible solution on SAT
        chains) and VSIDS is restarted.  With ``carry=True`` only the
        phases that point at newly disabled colors are neutralized, so a
        vertex whose color survives keeps steering toward the old
        solution.

        In both modes the activators of still-active colors are biased
        True: deciding one False would voluntarily disable a live color
        (the guard clauses force every ``x[v][c]`` false) and send the
        search into needless conflicts.
        """
        saved_phase = self.solver.saved_phase
        for c in range(1, k + 1):
            saved_phase[self.activators[c]] = True
        if not carry:
            for var in self.x.values():
                saved_phase[var] = False
            self.solver.vsids = VSIDS(self.solver.num_vars)
            return
        if not self._last_coloring:
            return
        for v, color in self._last_coloring.items():
            if color > k:
                for c in range(1, self.max_k + 1):
                    saved_phase[self.x[(v, c)]] = False

    def solve_k(
        self,
        k: int,
        time_limit: Optional[float] = None,
        permanent: bool = False,
        carry_heuristics: bool = False,
        should_stop=None,
    ) -> Tuple[str, Optional[Dict[int, int]], List[int]]:
        """Decide K-colorability on the persistent solver.

        Returns ``(status, coloring, failed_colors)``.  ``coloring`` is
        present on SAT; ``failed_colors`` on UNSAT is the sorted set of
        colors in the final-conflict core — the formula is already
        unsatisfiable with just those colors disabled, so every ``k' <
        min(failed_colors)`` is dead too (the unsat core over colors the
        binary descent uses to skip queries).

        ``permanent=True`` disables colors ``k+1..`` with level-0 unit
        clauses instead of per-call assumptions.  That is only sound for
        *monotone* descents (the linear strategy: K never goes back up),
        but it is measurably cheaper: literals forced at level 0 are
        dropped from every learnt clause, whereas assumption-level
        literals ride along in each one — and the clauses of the
        now-dead color groups are garbage-collected outright.  Binary
        probes must keep ``permanent=False`` so refutations stay
        retractable and return assumption cores.

        ``should_stop`` is polled inside the solver every few dozen
        conflicts; when it turns true the query returns UNKNOWN (the
        solver survives, learned clauses intact).
        """
        if k > self.max_k:
            raise ValueError(
                f"k={k} above the encoded bound {self.max_k}; grow_to() a "
                "growable search (or re-encode) to raise the budget"
            )
        if permanent and self.growable:
            raise ValueError(
                "permanent queries disable colors with level-0 units, which "
                "a later grow_to() could never re-enable; growable searches "
                "must keep permanent=False"
            )
        if k > self._active_ub:
            # Colors above _active_ub were disabled with level-0 units by
            # an earlier permanent query; no assumption can re-enable
            # them, so answering such a query would silently report the
            # wrong (smaller) color budget as UNSAT.
            raise ValueError(
                f"k={k} exceeds the permanently disabled bound "
                f"{self._active_ub}: permanent queries are monotone"
            )
        if self.root_unsat:
            return UNSAT, None, []
        self._prepare_heuristics(k, carry_heuristics)
        if permanent:
            disabled = self._active_ub > k
            for c in range(k + 1, self._active_ub + 1):
                if not self.solver.add_clause([-self.activators[c]]):
                    self.root_unsat = True
            self._active_ub = k
            if self.root_unsat:
                return UNSAT, None, []
            if disabled:
                # Shrink: the disabled colors' clause groups are now
                # satisfied at level 0 — reclaim them.
                self._collect_garbage()
            assumptions: List[int] = []
        else:
            assumptions = self.assumptions_for(k)
        tracer = active_tracer()
        if tracer is not None:
            tracer.k_query_begin(k, permanent)
        result = self.solver.solve(
            assumptions=assumptions, time_limit=time_limit,
            should_stop=should_stop,
        )
        self.stats.merge(result.stats)
        status = SAT if result.is_sat else UNSAT if result.is_unsat else UNKNOWN
        run = result.stats
        if tracer is not None:
            tracer.k_query_end(k, status, run.conflicts, run.decisions,
                               run.propagations, run.restarts)
        get_registry().inc("ksearch_queries_total", status=status)
        get_registry().observe("ksearch_query_conflicts", run.conflicts)
        if result.is_sat:
            coloring: Dict[int, int] = {}
            model = result.model
            if self._pre is not None:
                # Variables eliminated by the assumption-aware
                # preprocessing are reconstructed before decoding.
                model = self._pre.extend_model(model)
            for v in range(self.graph.num_vertices):
                for c in range(1, k + 1):
                    if model[self.x[(v, c)]]:
                        coloring[v] = c
                        break
            self._last_coloring = coloring
            return SAT, coloring, []
        if result.is_unsat:
            failed = sorted(
                c
                for c, a in self.activators.items()
                if -a in (result.failed_assumptions or ())
            )
            return UNSAT, None, failed
        return UNKNOWN, None, []


def sat_k_colorable(
    graph: Graph,
    k: int,
    time_limit: Optional[float] = None,
    amo_encoding: str = "pairwise",
    sbp_kind: str = "none",
    preprocess: bool = True,
    reduce: bool = False,
    stats: Optional[SolverStats] = None,
    should_stop=None,
) -> Tuple[str, Optional[Dict[int, int]]]:
    """Decide K-colorability with the CNF CDCL solver.

    Returns ``(status, coloring)``; the coloring (vertex -> color) is
    present when status is SAT.  ``preprocess`` runs the full CNF
    preprocessor on the encoding and reconstructs the model afterwards
    (``decode`` always sees a total assignment); ``reduce`` peels
    vertices of degree < K and splits components before encoding, which
    is exact for the decision problem.  ``stats``, when given, has the
    solver statistics of every internal solve merged into it.
    ``should_stop`` is polled *inside* the solver (every few dozen
    conflicts): when it turns true the query gives up with UNKNOWN.
    """
    if k <= 0:
        return (UNSAT if graph.num_vertices else SAT), ({} if not graph.num_vertices else None)
    if reduce:
        deadline = Deadline.after(time_limit)

        def decide(sub: Graph, kk: int) -> Tuple[str, Optional[Dict[int, int]]]:
            # The budget is shared by all kernel components, not per
            # component — hand each one only what is left.
            return sat_k_colorable(
                sub, kk, time_limit=deadline.remaining(), amo_encoding=amo_encoding,
                sbp_kind=sbp_kind, preprocess=preprocess, reduce=False,
                stats=stats, should_stop=should_stop,
            )

        reduced = solve_with_reduction(graph, k, decide)
        return reduced.status, reduced.coloring
    formula, x = encode_k_coloring_cnf(graph, k, amo_encoding, sbp_kind)
    if preprocess:
        pre = preprocess_cnf(formula)
        if pre.is_unsat:
            return UNSAT, None
        if pre.formula.clauses:
            solver = new_solver(num_vars=pre.formula.num_vars)
            if not solver.add_formula(pre.formula):
                return UNSAT, None
            result = solver.solve(time_limit=time_limit, should_stop=should_stop)
            if stats is not None:
                stats.merge(result.stats)
            if not result.is_sat:
                return result.status, None
            model = pre.extend_model(result.model)
        else:
            model = pre.extend_model({})  # preprocessing solved it
    else:
        solver = new_solver(num_vars=formula.num_vars)
        if not solver.add_formula(formula):
            return UNSAT, None
        result = solver.solve(time_limit=time_limit, should_stop=should_stop)
        if stats is not None:
            stats.merge(result.stats)
        if not result.is_sat:
            return result.status, None
        model = result.model
    coloring = {}
    for v in range(graph.num_vertices):
        for c in range(1, k + 1):
            if model[x[(v, c)]]:
                coloring[v] = c
                break
    return SAT, coloring


@dataclass
class SatPipelineResult:
    """Outcome of the repeated-SAT chromatic-number search."""

    status: str  # OPTIMAL / SAT (bound not proved) / UNKNOWN
    chromatic_number: Optional[int]
    coloring: Optional[Dict[int, int]]
    sat_calls: int
    time_seconds: float
    # Aggregated solver statistics over every K query of the search.
    stats: SolverStats = field(default_factory=SolverStats)
    # The (k, status) trace of the descent, in query order.
    k_queries: List[Tuple[int, str]] = field(default_factory=list)
    # How many fresh solvers the search instantiated: 1 for a true
    # incremental descent, one per query for the scratch strategy.  The
    # bench-smoke guard asserts on this to catch silent fallbacks.
    solvers_created: int = 0
    incremental: bool = False


def chromatic_number_sat(
    graph: Graph,
    strategy: str = "linear",
    time_limit: Optional[float] = None,
    amo_encoding: str = "pairwise",
    sbp_kind: str = "none",
    preprocess: bool = True,
    reduce: bool = True,
    incremental: bool = True,
    should_stop=None,
    kernelized=None,
) -> SatPipelineResult:
    """Chromatic number via repeated CNF-SAT decision calls.

    ``strategy`` is ``"linear"`` (tighten from the DSATUR bound, the
    paper's suggestion for small bounds) or ``"binary"`` (bisect between
    the clique bound and DSATUR, its suggestion otherwise).

    With ``incremental=True`` (default) the whole descent runs on one
    persistent solver via :class:`IncrementalKSearch`: the graph is
    kernelized once at the clique bound (``reduce``), encoded once at
    the DSATUR bound with activation literals, simplified once
    (``preprocess``, model-preserving subset), and every K query reuses
    the learned clauses of the previous ones.  The binary strategy
    additionally uses the failed-assumption core of UNSAT answers to
    skip K values the core already proves dead.  With
    ``incremental=False`` each query pays for a fresh encoding,
    preprocessing and solver (the historical behaviour, kept for
    measurement).

    ``should_stop`` (a zero-argument predicate) is polled before each K
    query *and inside each query* (every few dozen conflicts); when it
    turns true the search stops and the best-so-far answer is returned
    (status SAT — the bound is not proved), so even a single monster
    UNSAT query is interruptible.

    ``kernelized`` optionally hands in a precomputed ``(clique bound,
    kernel, component pairs)`` triple (the component pool's
    disconnectedness probe) so the incremental path does not kernelize
    the same graph twice; only consulted when ``incremental`` and
    ``reduce`` are set.
    """
    if strategy not in ("linear", "binary"):
        raise ValueError(f"unknown strategy {strategy!r}")
    start = time.monotonic()
    n = graph.num_vertices
    if n == 0:
        return SatPipelineResult("OPTIMAL", 0, {}, 0, 0.0)
    if incremental:
        return _chromatic_number_incremental(
            graph, strategy, start, time_limit=time_limit,
            amo_encoding=amo_encoding, sbp_kind=sbp_kind,
            preprocess=preprocess, reduce=reduce, should_stop=should_stop,
            kernelized=kernelized,
        )
    heuristic_coloring, ub = dsatur(graph)
    best = {v: c + 1 for v, c in heuristic_coloring.items()}
    lb = max(1, clique_lower_bound(graph))
    calls = 0
    run_stats = SolverStats()
    k_queries: List[Tuple[int, str]] = []
    deadline = Deadline.after(time_limit)

    def finish(status: str, k: int) -> SatPipelineResult:
        return SatPipelineResult(
            status, k, best, calls, time.monotonic() - start,
            stats=run_stats, k_queries=k_queries, solvers_created=calls,
            incremental=False,
        )

    if strategy == "linear":
        k = ub - 1
        while k >= lb:
            if deadline.expired():
                _note_deadline_expired()
                return finish(SAT, k + 1)
            if should_stop is not None and should_stop():
                return finish(SAT, k + 1)
            calls += 1
            status, coloring = sat_k_colorable(
                graph, k, time_limit=deadline.remaining(),
                amo_encoding=amo_encoding, sbp_kind=sbp_kind,
                preprocess=preprocess, reduce=reduce, stats=run_stats,
                should_stop=should_stop,
            )
            k_queries.append((k, status))
            if status == UNKNOWN:
                return finish(SAT, k + 1)
            if status == UNSAT:
                return finish("OPTIMAL", k + 1)
            best = coloring
            k = len(set(coloring.values())) - 1
        return finish("OPTIMAL", lb)

    lo, hi = lb, ub
    while lo < hi:
        mid = (lo + hi) // 2
        if deadline.expired():
            _note_deadline_expired()
            return finish(SAT, hi)
        if should_stop is not None and should_stop():
            return finish(SAT, hi)
        calls += 1
        status, coloring = sat_k_colorable(
            graph, mid, time_limit=deadline.remaining(),
            amo_encoding=amo_encoding, sbp_kind=sbp_kind,
            preprocess=preprocess, reduce=reduce, stats=run_stats,
            should_stop=should_stop,
        )
        k_queries.append((mid, status))
        if status == UNKNOWN:
            return finish(SAT, hi)
        if status == UNSAT:
            lo = mid + 1
        else:
            best = coloring
            hi = min(len(set(coloring.values())), mid)
    return finish("OPTIMAL", hi)


def _chromatic_number_incremental(
    graph: Graph,
    strategy: str,
    start: float,
    time_limit: Optional[float],
    amo_encoding: str,
    sbp_kind: str,
    preprocess: bool,
    reduce: bool,
    should_stop=None,
    kernelized=None,
) -> SatPipelineResult:
    """The persistent-solver descent behind ``chromatic_number_sat``.

    With ``reduce`` the graph is kernelized *once* at the clique lower
    bound ``lb`` (peeling at ``lb`` preserves ``chi(G) = max(chi(kernel),
    lb)``), the descent runs on the kernel down to ``lb``, and the best
    coloring is lifted back.  Component splitting is intentionally not
    applied here — one solver serves the whole kernel so its learned
    clauses span components; see the ROADMAP's "Incremental search"
    notes for the per-component variant.
    """
    deadline = Deadline.after(time_limit)
    if reduce and kernelized is not None:
        # The component pool's probe already peeled at the clique bound.
        lb, kernel, _ = kernelized
        lb = max(1, lb)
        work = kernel.graph
    else:
        lb = max(1, clique_lower_bound(graph))
        kernel = None
        work = graph
        if reduce:
            kernel = peel_low_degree(graph, lb)
            work = kernel.graph

    def lift(kernel_coloring: Dict[int, int]) -> Dict[int, int]:
        if kernel is None:
            return kernel_coloring
        return extend_coloring(kernel, kernel_coloring)

    calls = 0
    run_stats = SolverStats()
    k_queries: List[Tuple[int, str]] = []

    if work.num_vertices == 0:
        coloring = lift({})
        chi = len(set(coloring.values())) if coloring else 0
        return SatPipelineResult(
            "OPTIMAL", chi, coloring, 0, time.monotonic() - start,
            stats=run_stats, k_queries=k_queries, solvers_created=0,
            incremental=True,
        )

    heuristic_coloring, ub = dsatur(work)
    best_kernel = {v: c + 1 for v, c in heuristic_coloring.items()}
    if ub <= lb:
        coloring = lift(best_kernel)
        return SatPipelineResult(
            "OPTIMAL", max(ub, lb) if kernel is None else lb,
            coloring, 0, time.monotonic() - start,
            stats=run_stats, k_queries=k_queries, solvers_created=0,
            incremental=True,
        )

    search = IncrementalKSearch(
        work, ub, amo_encoding=amo_encoding, sbp_kind=sbp_kind,
        simplify=preprocess, eliminate=preprocess,
    )

    def finish(status: str, chi: int, kernel_coloring: Dict[int, int]) -> SatPipelineResult:
        run_stats.merge(search.stats)
        return SatPipelineResult(
            status, chi, lift(kernel_coloring), calls,
            time.monotonic() - start, stats=run_stats, k_queries=k_queries,
            solvers_created=1, incremental=True,
        )

    if strategy == "linear":
        k = ub - 1
        while k >= lb:
            if deadline.expired():
                _note_deadline_expired()
                return finish(SAT, k + 1, best_kernel)
            if should_stop is not None and should_stop():
                return finish(SAT, k + 1, best_kernel)
            calls += 1
            # The linear strategy is monotone, so colors are switched
            # off permanently (level-0 units): same persistent solver,
            # but learnt clauses stay free of assumption literals.
            status, coloring, _ = search.solve_k(
                k, time_limit=deadline.remaining(), permanent=True,
                should_stop=should_stop,
            )
            k_queries.append((k, status))
            if status == UNKNOWN:
                return finish(SAT, k + 1, best_kernel)
            if status == UNSAT:
                return finish("OPTIMAL", k + 1, best_kernel)
            best_kernel = coloring
            k = len(set(coloring.values())) - 1
        return finish("OPTIMAL", lb, best_kernel)

    lo, hi = lb, ub
    while lo < hi:
        mid = (lo + hi) // 2
        if deadline.expired():
            _note_deadline_expired()
            return finish(SAT, hi, best_kernel)
        if should_stop is not None and should_stop():
            return finish(SAT, hi, best_kernel)
        calls += 1
        status, coloring, failed_colors = search.solve_k(
            mid, time_limit=deadline.remaining(), should_stop=should_stop
        )
        k_queries.append((mid, status))
        if status == UNKNOWN:
            return finish(SAT, hi, best_kernel)
        if status == UNSAT:
            # The core over colors proves UNSAT for every k whose
            # disabled-color set covers it, i.e. all k < min(core):
            # chi(kernel) >= min(core), which can exceed mid + 1.
            lo = max(mid + 1, min(failed_colors) if failed_colors else 0)
        else:
            best_kernel = coloring
            hi = min(len(set(coloring.values())), mid)
    return finish("OPTIMAL", hi, best_kernel)
