"""Graph coloring -> 0-1 ILP, exactly as in the paper's Section 2.5.

For a graph ``G(V, E)`` and color budget ``K``:

* indicator variables ``x[v][k]`` (vertex ``v`` has color ``k``),
  ``k = 1..K``;
* one PB constraint per vertex: ``sum_k x[v][k] = 1``;
* per edge ``(a, b)`` and color ``k``: clause ``(~x[a][k] | ~x[b][k])``;
* color-usage variables ``y[k]`` with ``y_k <-> OR_v x[v][k]``;
* objective ``MIN sum_k y_k``.

Totals match the paper: ``n*K + K`` variables, ``K*(m + n + 1)`` CNF
clauses, ``n`` PB constraints, one objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.formula import Formula
from ..graphs.graph import Graph


@dataclass
class ColoringEncoding:
    """A formula encoding K-colorability of a graph, plus the var maps.

    ``x_var[(v, k)]`` is the indicator for vertex ``v`` (0-based) having
    color ``k`` (1-based); ``y_var[k]`` the color-usage indicator.
    """

    graph: Graph
    num_colors: int
    formula: Formula
    x_var: Dict[tuple, int] = field(default_factory=dict)
    y_var: Dict[int, int] = field(default_factory=dict)

    def x(self, vertex: int, color: int) -> int:
        """Indicator variable of (vertex, color); colors are 1..K."""
        return self.x_var[(vertex, color)]

    def y(self, color: int) -> int:
        """Usage variable of a color."""
        return self.y_var[color]

    def copy(self) -> "ColoringEncoding":
        """Copy with an independent formula (constraints may be appended)."""
        return ColoringEncoding(
            graph=self.graph,
            num_colors=self.num_colors,
            formula=self.formula.copy(),
            x_var=dict(self.x_var),
            y_var=dict(self.y_var),
        )


def encode_coloring(
    graph: Graph,
    num_colors: int,
    with_objective: bool = True,
) -> ColoringEncoding:
    """Build the paper's 0-1 ILP encoding of K-coloring.

    With ``with_objective=False`` the formula is the pure decision
    problem (used when driving a plain SAT-style search over K).
    """
    if num_colors <= 0:
        raise ValueError("need at least one color")
    formula = Formula()
    encoding = ColoringEncoding(graph=graph, num_colors=num_colors, formula=formula)
    n = graph.num_vertices
    colors = range(1, num_colors + 1)

    for v in range(n):
        for k in colors:
            encoding.x_var[(v, k)] = formula.new_var(("x", v, k))
    for k in colors:
        encoding.y_var[k] = formula.new_var(("y", k))

    # Each vertex gets exactly one color (one PB constraint per vertex).
    for v in range(n):
        formula.add_exactly_one([encoding.x(v, k) for k in colors])
    # Adjacent vertices differ (K binary clauses per edge).
    for a, b in graph.edges():
        for k in colors:
            formula.add_clause([-encoding.x(a, k), -encoding.x(b, k)])
    # y_k <-> OR_v x[v][k]: n*K clauses for <-, K long clauses for ->.
    for k in colors:
        yk = encoding.y(k)
        for v in range(n):
            formula.add_clause([-encoding.x(v, k), yk])
        formula.add_clause([-yk] + [encoding.x(v, k) for v in range(n)])
    if with_objective:
        formula.set_objective([(1, encoding.y(k)) for k in colors], sense="min")
    return encoding


def add_color_activation_literals(
    formula: Formula,
    x_var: Dict[tuple, int],
    num_vertices: int,
    num_colors: int,
) -> Dict[int, int]:
    """Add per-color activation (selector) literals for incremental K-search.

    For each color ``c`` a fresh variable ``a_c`` is introduced together
    with the guard clauses ``(~x[v][c] | a_c)`` for every vertex, so the
    single assumption ``-a_c`` switches off color ``c`` across the whole
    encoding: every clause group that mentions color ``c`` — the
    per-vertex exactly-one group, the per-edge conflict group, and the
    NU/SC symmetry-breaking groups — is neutralized through the forced
    ``~x[v][c]`` literals.  Encoding once at the upper bound and
    assuming ``[-a_{k+1}, ..., -a_ub]`` turns the whole chromatic-number
    descent into queries on one persistent solver.

    Returns ``{color: activation_var}``.
    """
    activators: Dict[int, int] = {}
    for c in range(1, num_colors + 1):
        activators[c] = formula.new_var(("act", c))
    for c in range(1, num_colors + 1):
        a_c = activators[c]
        for v in range(num_vertices):
            formula.add_clause([-x_var[(v, c)], a_c])
    return activators


def decode_coloring(
    encoding: ColoringEncoding, model: Dict[int, bool]
) -> Dict[int, int]:
    """Extract the vertex -> color map from a model.

    Raises ``ValueError`` if some vertex has no color set (which would
    indicate a solver bug — the exactly-one constraints forbid it).
    """
    coloring: Dict[int, int] = {}
    for v in range(encoding.graph.num_vertices):
        for k in range(1, encoding.num_colors + 1):
            if model[encoding.x(v, k)]:
                if v in coloring:
                    raise ValueError(f"vertex {v} has two colors in the model")
                coloring[v] = k
        if v not in coloring:
            raise ValueError(f"vertex {v} has no color in the model")
    return coloring


def used_colors(coloring: Dict[int, int]) -> int:
    """Number of distinct colors in a coloring."""
    return len(set(coloring.values()))


def normalize_coloring(coloring: Dict[int, int]) -> Dict[int, int]:
    """Rename colors to 1..m in first-use order (canonical form)."""
    rename: Dict[int, int] = {}
    out: Dict[int, int] = {}
    for v in sorted(coloring):
        c = coloring[v]
        if c not in rename:
            rename[c] = len(rename) + 1
        out[v] = rename[c]
    return out
