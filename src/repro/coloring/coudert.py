"""Coudert-style exact coloring (DAC 1997) — the Section 4.3 comparator.

Coudert's observation: "coloring of real-life graphs is easy" because
their chromatic number usually equals their clique number; his
algorithm interleaves maximal-clique computation with sequential
coloring and prunes branches whose remaining subgraph is colorable
within the current budget ("q-color pruning").

This implementation keeps the two load-bearing ingredients:

* a *fresh max-clique lower bound per search node* over the uncolored
  subgraph (Coudert's main difference from Brelaz-style DSATUR B&B,
  which computes one clique up front);
* early termination as soon as lower bound == upper bound.

It serves as the second problem-specific baseline for the comparison in
the paper's Section 4.3 (against our queens/myciel/DSJC numbers).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..graphs.cliques import greedy_clique
from ..graphs.coloring_heuristics import dsatur
from ..graphs.graph import Graph
from ..resilience import Deadline


@dataclass
class CoudertResult:
    """Outcome of Coudert-style exact coloring."""

    chromatic_number: int
    coloring: Dict[int, int]
    optimal: bool
    nodes_explored: int
    time_seconds: float


def coudert_chromatic_number(
    graph: Graph,
    time_limit: Optional[float] = None,
    node_limit: Optional[int] = None,
    clique_every: int = 8,
) -> CoudertResult:
    """Exact chromatic number with per-node clique lower bounds.

    ``clique_every`` controls how often (in search depth) the clique
    bound on the uncolored remainder is recomputed — every node is
    precise but slow; the default refreshes periodically, which is
    what makes the bound pay for itself.
    """
    start = time.monotonic()
    deadline = Deadline.after(time_limit)
    n = graph.num_vertices
    if n == 0:
        return CoudertResult(0, {}, True, 0, 0.0)
    heuristic, ub = dsatur(graph)
    best_coloring = {v: c + 1 for v, c in heuristic.items()}
    best = ub
    root_clique = greedy_clique(graph)
    global_lb = max(1, len(root_clique))
    adj = [graph.neighbors(v) for v in range(n)]
    assignment: Dict[int, int] = {}
    for i, v in enumerate(root_clique):
        assignment[v] = i + 1
    nodes = [0]
    timed_out = [False]

    def over_budget() -> bool:
        if node_limit is not None and nodes[0] > node_limit:
            return True
        if deadline.bounded and (nodes[0] & 63) == 0:
            return deadline.expired()
        return False

    def uncolored_clique_bound() -> int:
        uncolored = [v for v in range(n) if v not in assignment]
        if not uncolored:
            return 0
        sub = graph.subgraph(uncolored)
        return len(greedy_clique(sub))

    def select_vertex() -> int:
        best_v, best_key = -1, None
        for v in range(n):
            if v in assignment:
                continue
            sat = len({assignment[w] for w in adj[v] if w in assignment})
            key = (-sat, -len(adj[v]), v)
            if best_key is None or key < best_key:
                best_v, best_key = v, key
        return best_v

    def recurse(colors_used: int, depth: int) -> None:
        nonlocal best, best_coloring
        if over_budget():
            timed_out[0] = True
            return
        nodes[0] += 1
        if colors_used >= best:
            return
        if len(assignment) == n:
            best = colors_used
            best_coloring = dict(assignment)
            return
        # Coudert's pruning: the uncolored remainder needs at least its
        # clique number of colors; some may reuse existing colors, so
        # only the amount exceeding the free budget prunes.
        if depth % clique_every == 0:
            remainder_lb = uncolored_clique_bound()
            if max(colors_used, remainder_lb) >= best:
                return
        v = select_vertex()
        forbidden = {assignment[w] for w in adj[v] if w in assignment}
        limit = min(colors_used + 1, best - 1)
        for color in range(1, limit + 1):
            if color in forbidden:
                continue
            assignment[v] = color
            recurse(max(colors_used, color), depth + 1)
            del assignment[v]
            if timed_out[0] or best <= global_lb:
                return

    recurse(len(root_clique), 0)
    elapsed = time.monotonic() - start
    optimal = not timed_out[0] or best <= global_lb
    return CoudertResult(best, best_coloring, optimal, nodes[0], elapsed)
