"""Coloring validation helpers (used by solvers, examples and tests)."""

from __future__ import annotations

from typing import Dict

from ..graphs.graph import Graph


def check_proper(graph: Graph, coloring: Dict[int, int]) -> None:
    """Raise ``ValueError`` unless ``coloring`` properly colors ``graph``."""
    for v in graph.vertices():
        if v not in coloring:
            raise ValueError(f"vertex {v} is uncolored")
    for u, v in graph.edges():
        if coloring[u] == coloring[v]:
            raise ValueError(f"edge ({u}, {v}) is monochromatic (color {coloring[u]})")


def is_proper(graph: Graph, coloring: Dict[int, int]) -> bool:
    """Boolean form of :func:`check_proper`."""
    try:
        check_proper(graph, coloring)
    except ValueError:
        return False
    return True


def color_class_sizes(coloring: Dict[int, int]) -> Dict[int, int]:
    """Map each color to the size of its class."""
    sizes: Dict[int, int] = {}
    for color in coloring.values():
        sizes[color] = sizes.get(color, 0) + 1
    return sizes
