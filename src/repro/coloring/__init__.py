"""Exact graph coloring: encoding, solving, decoding and baselines."""

from .coudert import CoudertResult, coudert_chromatic_number
from .encoding import (
    ColoringEncoding,
    decode_coloring,
    encode_coloring,
    normalize_coloring,
    used_colors,
)
from .encoding import add_color_activation_literals
from .enumerate import count_colorings, distinct_colorings, enumerate_models
from .exact_dsatur import ExactColoringResult, exact_chromatic_number
from .mehrotra_trick import (
    MTResult,
    build_mt_formula,
    maximal_independent_sets,
    mt_chromatic_number,
)
from .necsp import (
    NECSPOptimum,
    NECSPResult,
    necsp_chromatic_number,
    solve_necsp,
)
from .reduce import (
    Kernel,
    ReducedSolve,
    extend_coloring,
    peel_low_degree,
    solve_with_reduction,
)
from .sat_pipeline import (
    GROWABLE_SBP_KINDS,
    IncrementalKSearch,
    SatPipelineResult,
    chromatic_number_sat,
    encode_k_coloring_cnf,
    encode_k_coloring_growable,
    encode_k_coloring_incremental,
    sat_k_colorable,
)
from .solve import (
    ColoringSolveResult,
    PipelineInfo,
    SOLVER_NAMES,
    find_chromatic_number,
    prepare_formula,
    solve_coloring,
)
from .verify import check_proper, color_class_sizes, is_proper

__all__ = [
    "ColoringEncoding",
    "ColoringSolveResult",
    "CoudertResult",
    "ExactColoringResult",
    "IncrementalKSearch",
    "Kernel",
    "MTResult",
    "PipelineInfo",
    "ReducedSolve",
    "count_colorings",
    "distinct_colorings",
    "enumerate_models",
    "extend_coloring",
    "peel_low_degree",
    "solve_with_reduction",
    "NECSPOptimum",
    "NECSPResult",
    "SOLVER_NAMES",
    "SatPipelineResult",
    "build_mt_formula",
    "chromatic_number_sat",
    "coudert_chromatic_number",
    "encode_k_coloring_cnf",
    "encode_k_coloring_growable",
    "GROWABLE_SBP_KINDS",
    "maximal_independent_sets",
    "mt_chromatic_number",
    "necsp_chromatic_number",
    "sat_k_colorable",
    "solve_necsp",
    "add_color_activation_literals",
    "check_proper",
    "color_class_sizes",
    "decode_coloring",
    "encode_coloring",
    "encode_k_coloring_incremental",
    "exact_chromatic_number",
    "find_chromatic_number",
    "is_proper",
    "normalize_coloring",
    "prepare_formula",
    "solve_coloring",
    "used_colors",
]
