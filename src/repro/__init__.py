"""repro — reproduction of "Breaking Instance-Independent Symmetries in
Exact Graph Coloring" (Ramani, Aloul, Markov & Sakallah; DATE 2004 /
JAIR 2006).

The package is organized bottom-up:

* :mod:`repro.core`     — CNF/PB formulas and I/O
* :mod:`repro.sat`      — CDCL SAT solver
* :mod:`repro.pb`       — pseudo-Boolean (0-1 ILP) solver + optimizer
* :mod:`repro.ilp`      — generic LP-based branch and bound (CPLEX profile)
* :mod:`repro.graphs`   — graph ADT, DIMACS families, heuristics
* :mod:`repro.symmetry` — automorphism detection and group machinery
* :mod:`repro.sbp`      — symmetry-breaking predicate constructions
* :mod:`repro.coloring` — the paper's coloring pipeline
* :mod:`repro.experiments` — drivers regenerating every table/figure

Quickstart::

    from repro.graphs import queens_graph
    from repro.coloring import solve_coloring

    result = solve_coloring(queens_graph(5, 5), num_colors=7,
                            sbp_kind="nu+sc", solver="pbs2")
    assert result.status == "OPTIMAL" and result.num_colors == 5
"""

from .coloring import (
    ColoringSolveResult,
    exact_chromatic_number,
    find_chromatic_number,
    solve_coloring,
)
from .core import Formula
from .graphs import Graph
from .sbp import apply_sbp
from .symmetry import detect_symmetries

__version__ = "1.0.0"

__all__ = [
    "ColoringSolveResult",
    "Formula",
    "Graph",
    "apply_sbp",
    "detect_symmetries",
    "exact_chromatic_number",
    "find_chromatic_number",
    "solve_coloring",
    "__version__",
]
