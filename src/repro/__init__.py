"""repro — reproduction of "Breaking Instance-Independent Symmetries in
Exact Graph Coloring" (Ramani, Aloul, Markov & Sakallah; DATE 2004 /
JAIR 2006).

The package is organized bottom-up:

* :mod:`repro.core`     — CNF/PB formulas and I/O
* :mod:`repro.sat`      — CDCL SAT solver
* :mod:`repro.pb`       — pseudo-Boolean (0-1 ILP) solver + optimizer
* :mod:`repro.ilp`      — generic LP-based branch and bound (CPLEX profile)
* :mod:`repro.graphs`   — graph ADT, DIMACS families, heuristics
* :mod:`repro.symmetry` — automorphism detection and group machinery
* :mod:`repro.sbp`      — symmetry-breaking predicate constructions
* :mod:`repro.coloring` — the paper's coloring pipeline
* :mod:`repro.api`      — the composable public API (problems,
  pipelines, backend registry, sessions)
* :mod:`repro.experiments` — drivers regenerating every table/figure

Quickstart::

    from repro.api import ChromaticProblem, Pipeline
    from repro.graphs import queens_graph

    result = (Pipeline()
              .symmetry(sbp_kind="nu+sc")
              .solve(backend="pb-pbs2")
              .run(ChromaticProblem(queens_graph(5, 5))))
    assert result.status == "OPTIMAL" and result.chromatic_number == 5

The historical one-call entry points ``solve_coloring`` and
``find_chromatic_number`` remain as deprecation shims over the API.
"""

from . import api
from .api import (
    BudgetedOptimize,
    ChromaticProblem,
    DecisionProblem,
    Pipeline,
    PipelineConfig,
    Result,
    Session,
    available_backends,
)
from .coloring import (
    ColoringSolveResult,
    exact_chromatic_number,
    find_chromatic_number,
    solve_coloring,
)
from .core import Formula
from .graphs import Graph
from .sbp import apply_sbp
from .symmetry import detect_symmetries

__version__ = "1.1.0"

__all__ = [
    "BudgetedOptimize",
    "ChromaticProblem",
    "ColoringSolveResult",
    "DecisionProblem",
    "Formula",
    "Graph",
    "Pipeline",
    "PipelineConfig",
    "Result",
    "Session",
    "api",
    "apply_sbp",
    "available_backends",
    "detect_symmetries",
    "exact_chromatic_number",
    "find_chromatic_number",
    "solve_coloring",
    "__version__",
]
