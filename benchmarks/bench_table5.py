"""Regenerate Table 5 (Appendix): per-instance queens results."""

from conftest import run_once

from repro.experiments.instances import ScalePreset
from repro.experiments.tables import render_table5, table5

QUEENS_SCALE = ScalePreset(
    name="bench-queens", instance_names=("queen5_5",),
    k_primary=7, k_secondary=9, time_limit=5.0,
    detection_node_limit=20000, solvers=("pbs2", "pueblo"),
)


def test_table5(benchmark, bench_json):
    (records, seconds) = bench_json.timed(run_once, benchmark, table5, QUEENS_SCALE)
    print()
    print(render_table5(records, QUEENS_SCALE.time_limit))
    for r in records:
        bench_json.add(
            f"{r.instance}-{r.solver}-{r.sbp_kind}"
            f"{'-sbps' if r.instance_dependent else ''}",
            k=r.k, status=r.status, wall_seconds=round(r.seconds, 4),
        )
    bench_json.add("table5-total", wall_seconds=seconds)
    # queen5_5 at K=7 is easy with symmetry breaking: at least the
    # NU+SC and instance-dependent configurations must solve it.
    solved = {(r.sbp_kind, r.instance_dependent) for r in records if r.solved}
    assert ("nu+sc", False) in solved
    assert any(inst_dep for (_, inst_dep) in solved)
