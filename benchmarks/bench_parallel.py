"""Execution-layer head-to-heads: pool tiers and the portfolio race.

The component pool has three execution tiers (sequential, threaded,
process-backed) that must agree on every answer while differing only
in wall-clock; the portfolio backend races whole engines and returns
the first conclusive answer.  This module measures all of them on a
3-component union of ~equal-hardness random graphs and records the
results in ``BENCH_parallel.json``:

* per-tier wall seconds (min of ``_REPS`` runs — min-of-reps is the
  stable estimator on a shared runner) plus the answer counters every
  tier must reproduce exactly,
* ``process_vs_threads_speedup`` and ``process_vs_sequential_speedup``
  — the reason the process tier exists.  The threaded tier is
  GIL-bound, so on a multi-core runner the process tier must win
  outright; on a single-core runner no tier can beat sequential, so
  the bench instead bounds the process tier's overhead.  ``cpus`` is
  recorded alongside so a baseline from one machine class is
  interpretable on another,
* the portfolio race on one component: wall seconds, winner, and the
  exchanged bounds (the race must finish far below the per-engine
  budget because the first conclusive racer cancels the rest).

``scripts/check_bench.py`` gates the deterministic counters (chromatic
numbers, component/solver counts, race status) exactly and the speedup
ratio loosely against the committed baseline.
"""

import multiprocessing
import time

from repro.api import ChromaticProblem, Pipeline
from repro.coloring.verify import is_proper
from repro.graphs.generators import gnp_graph
from repro.graphs.graph import disjoint_union

# Three ~1.4s-sequential components (chi 7 each, no clique shortcut):
# equal hardness keeps the parallel schedule balanced, so the tier
# comparison measures the executor, not the workload skew.
_SEEDS = (3, 9, 14)
_REPS = 2
_TIME_LIMIT = 120


def _union():
    return disjoint_union(*(gnp_graph(42, 0.4, seed=s) for s in _SEEDS))


def _run_tier(graph, **solve_kwargs):
    return (
        Pipeline()
        .solve(backend="cdcl-incremental", time_limit=_TIME_LIMIT,
               **solve_kwargs)
        .run(ChromaticProblem(graph))
    )


def test_pool_tiers_process_vs_threads_vs_sequential(bench_json):
    graph = _union()
    tiers = {
        "sequential": {},
        "threads": {"pool_threads": len(_SEEDS)},
        "processes": {"pool_jobs": len(_SEEDS)},
    }
    best = {}
    for label, kwargs in tiers.items():
        for _ in range(_REPS):
            t0 = time.perf_counter()
            result = _run_tier(graph, **kwargs)
            wall = time.perf_counter() - t0
            best[label] = min(best.get(label, float("inf")), wall)
        assert result.status == "OPTIMAL", label
        assert result.chromatic_number == 7, label
        assert len(result.components) == len(_SEEDS), label
        assert is_proper(graph, result.coloring), label
        bench_json.add(
            f"pool-tier-{label}",
            chromatic_number=result.chromatic_number,
            components=len(result.components),
            solvers_created=result.solvers_created,
            wall_seconds=round(best[label], 4),
        )
    cpus = multiprocessing.cpu_count()
    vs_threads = best["threads"] / best["processes"]
    vs_sequential = best["sequential"] / best["processes"]
    bench_json.add(
        "pool-tier-aggregate",
        cpus=cpus,
        sequential_seconds=round(best["sequential"], 4),
        threads_seconds=round(best["threads"], 4),
        processes_seconds=round(best["processes"], 4),
        process_vs_threads_speedup=round(vs_threads, 3),
        process_vs_sequential_speedup=round(vs_sequential, 3),
    )
    print(f"\n  pool tiers ({cpus} cpu): sequential {best['sequential']:.2f}s, "
          f"threads {best['threads']:.2f}s, processes {best['processes']:.2f}s "
          f"({vs_threads:.2f}x vs threads)")
    if cpus >= 2:
        # Real parallelism available: the GIL-bound threaded tier must
        # lose to the process tier outright.
        assert vs_threads >= 1.2, (
            f"process tier lost its edge over threads: {vs_threads:.2f}x "
            f"on {cpus} cpus"
        )
    else:
        # Single core: no tier can beat sequential, so bound the process
        # tier's overhead (fork + IPC + scheduler) instead.
        assert vs_threads >= 0.4, (
            f"process-tier overhead blew up: {vs_threads:.2f}x vs threads "
            "on 1 cpu"
        )


def test_portfolio_race_first_conclusive_wins(bench_json):
    graph = gnp_graph(42, 0.4, seed=_SEEDS[0])
    t0 = time.perf_counter()
    result = (
        Pipeline()
        .solve(backend="portfolio", time_limit=_TIME_LIMIT)
        .run(ChromaticProblem(graph))
    )
    wall = time.perf_counter() - t0
    assert result.status == "OPTIMAL"
    assert result.chromatic_number == 7
    assert is_proper(graph, result.coloring)
    stage = next(s for s in result.stages if s.name == "race")
    assert stage.details["winner"] is not None
    # First-conclusive-cancels-the-rest: the race never runs anywhere
    # near the per-engine budget.
    assert wall < _TIME_LIMIT / 2
    bench_json.add(
        "portfolio-race-gnp42",
        chromatic_number=result.chromatic_number,
        racers=len(stage.details["racers"]),
        cancelled=stage.details["cancelled"],
        ub=stage.details["ub"],
        lb=stage.details["lb"],
        wall_seconds=round(wall, 4),
    )
    print(f"\n  portfolio race: winner {stage.details['winner']} in "
          f"{wall:.2f}s, {stage.details['cancelled']} racer(s) cancelled")
