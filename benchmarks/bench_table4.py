"""Regenerate Table 4: the higher color budget (paper's K=30 analog)."""

from conftest import run_once

from repro.experiments.tables import render_solver_table, table4


def test_table4(benchmark, bench_scale, bench_json):
    (table, seconds) = bench_json.timed(run_once, benchmark, table4, bench_scale)
    print()
    print(render_solver_table(table, bench_scale.solvers))
    for (sbp, solver, inst_dep), cell in sorted(table.cells.items()):
        bench_json.add(
            f"{solver}-{sbp}{'-sbps' if inst_dep else ''}",
            k=table.k, num_solved=cell.num_solved,
            wall_seconds=round(cell.total_seconds, 4),
        )
    bench_json.add("table4-total", wall_seconds=seconds)
    # The larger K produces larger formulas; totals should not shrink
    # dramatically relative to Table 3 (the paper reports fewer solved).
    assert table.k == bench_scale.k_secondary
    assert any(cell.num_solved > 0 for cell in table.cells.values())
