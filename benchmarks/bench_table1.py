"""Regenerate Table 1: benchmark statistics + measured chromatic numbers."""

from conftest import run_once

from repro.experiments.tables import render_table1, table1


def test_table1(benchmark, bench_scale, bench_json):
    (rows, seconds) = bench_json.timed(
        run_once, benchmark, table1, bench_scale, per_instance_budget=5.0
    )
    print()
    print(render_table1(rows, bench_scale.k_primary))
    for r in rows:
        bench_json.add(r.name, chromatic_number=r.measured_chi)
    bench_json.add("table1-total", wall_seconds=seconds)
    by_name = {r.name: r for r in rows}
    # Exact families must reproduce the published chromatic numbers.
    assert by_name["myciel3"].measured_chi == 4
    assert by_name["myciel4"].measured_chi == 5
    assert by_name["queen5_5"].measured_chi == 5
