"""Kernelization bench: how much peeling shrinks sparse benchmarks.

The paper's observation that "realistic graphs are relatively sparse
and have low chromatic numbers" is what makes its instances tractable;
this bench quantifies it — the (K-1)-core of the sparse families is a
small fraction of the input, so the encoded 0-1 ILP shrinks
accordingly.
"""

import pytest

from repro.api import DecisionProblem, Pipeline
from repro.coloring.reduce import peel_low_degree
from repro.experiments.instances import get_instance

SPARSE = [("huck", 11), ("jean", 10), ("miles250", 8)]


@pytest.mark.parametrize("name,k", SPARSE)
def test_peeling_shrinks_sparse_instances(benchmark, name, k, bench_json):
    graph = get_instance(name).graph()
    kernel = benchmark(lambda: peel_low_degree(graph, k))
    assert kernel.graph.num_vertices < graph.num_vertices
    print(f"\n  {name}: {graph.num_vertices} -> {kernel.graph.num_vertices} "
          f"vertices at K={k}")
    _, seconds = bench_json.timed(peel_low_degree, graph, k)
    bench_json.add(name, k=k, vertices=graph.num_vertices,
                   kernel_vertices=kernel.graph.num_vertices,
                   wall_seconds=round(seconds, 6))


@pytest.mark.parametrize("name,k", [("huck", 11), ("jean", 10)])
def test_reduced_solve(benchmark, name, k, bench_json):
    graph = get_instance(name).graph()
    pipe = Pipeline().reduce(True).solve(backend="pb-pbs2", time_limit=30)

    def run():
        return pipe.run(DecisionProblem(graph, k))

    result = benchmark(run)
    assert result.status == "SAT"
    assert graph.is_proper_coloring(result.coloring)
    # One standalone timed run (benchmark() may loop calibration rounds).
    _, seconds = bench_json.timed(run)
    bench_json.add(f"{name}-solve", k=k, status=result.status,
                   components_solved=result.pipeline.components_solved,
                   wall_seconds=round(seconds, 4))
