"""Ablation benches: support cap, search strategy, formula growth."""

from conftest import run_once

from repro.experiments.ablations import (
    ablate_formula_growth,
    ablate_strategy,
    ablate_support_cap,
)


def test_support_cap(benchmark, bench_json):
    rows = run_once(
        benchmark, ablate_support_cap,
        instance_name="queen5_5", k=6, caps=(4, 64), time_limit=20.0,
    )
    print()
    for r in rows:
        print(f"  cap={r.cap}: +{r.clauses_added} clauses, {r.seconds:.2f}s, {r.status}")
        bench_json.add(f"queen5_5-cap{r.cap}", k=6, status=r.status,
                       clauses_added=r.clauses_added,
                       wall_seconds=round(r.seconds, 4))
    assert rows[0].clauses_added <= rows[1].clauses_added
    assert all(r.status in ("OPTIMAL", "SAT") for r in rows)


def test_strategy(benchmark, bench_json):
    rows = run_once(
        benchmark, ablate_strategy, instance_name="queen5_5", k=6, time_limit=20.0,
    )
    print()
    for r in rows:
        print(f"  {r.strategy}: {r.seconds:.2f}s {r.status} value={r.value}")
        bench_json.add(f"queen5_5-{r.strategy}", k=6, status=r.status,
                       wall_seconds=round(r.seconds, 4))
    values = {r.value for r in rows if r.status == "OPTIMAL"}
    assert len(values) <= 1  # strategies agree on the optimum


def test_formula_growth(benchmark, bench_scale, bench_json):
    rows = run_once(benchmark, ablate_formula_growth, bench_scale)
    print()
    for r in rows:
        print(f"  {r.sbp_kind:6s} vars={r.num_vars} clauses={r.num_clauses} "
              f"pb={r.num_pb} growth={r.growth_vs_none:.2f}x")
        bench_json.add(f"growth-{r.sbp_kind}", num_vars=r.num_vars,
                       num_clauses=r.num_clauses,
                       growth_vs_none=round(r.growth_vs_none, 3))
    by_kind = {r.sbp_kind: r for r in rows}
    # Section 3.3: LI roughly doubles the formula; NU/SC are almost free.
    assert by_kind["li"].growth_vs_none > 1.5
    assert by_kind["nu"].growth_vs_none < 1.05
    assert by_kind["sc"].growth_vs_none < 1.05
