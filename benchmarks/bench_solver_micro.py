"""Microbenchmarks of the solver substrates (not tied to a paper table).

These track the performance of the pieces everything else is built on:
unit propagation throughput, pigeonhole refutation, PB propagation,
encoding construction and symmetry detection.
"""

from repro.coloring.encoding import encode_coloring
from repro.core.formula import Formula
from repro.graphs.generators import queens_graph
from repro.pb.engine import PBSolver
from repro.sat.cdcl import solve_formula
from repro.symmetry.detect import detect_symmetries


def _pigeonhole(pigeons, holes):
    f = Formula()
    x = {(p, h): f.new_var() for p in range(pigeons) for h in range(holes)}
    for p in range(pigeons):
        f.add_clause([x[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                f.add_clause([-x[p1, h], -x[p2, h]])
    return f


def test_cdcl_pigeonhole(benchmark):
    f = _pigeonhole(7, 6)
    result = benchmark(lambda: solve_formula(f))
    assert result.is_unsat


def test_cdcl_implication_chain(benchmark):
    f = Formula(num_vars=2000)
    for i in range(1, 2000):
        f.add_clause([-i, i + 1])
    f.add_clause([1])
    result = benchmark(lambda: solve_formula(f))
    assert result.is_sat


def test_pb_cardinality_propagation(benchmark):
    def build_and_solve():
        f = Formula(num_vars=300)
        f.add_at_least(list(range(1, 301)), 299)
        f.add_clause([-7])
        solver = PBSolver()
        solver.add_formula(f)
        return solver.solve()

    result = benchmark(build_and_solve)
    assert result.is_sat


def test_encoding_construction(benchmark):
    graph = queens_graph(8, 8)
    encoding = benchmark(lambda: encode_coloring(graph, 10))
    assert encoding.formula.num_vars == 64 * 10 + 10


def test_symmetry_detection_queen5(benchmark):
    formula = encode_coloring(queens_graph(5, 5), 6).formula

    def detect():
        return detect_symmetries(formula, compute_order=False)

    report = benchmark(detect)
    assert report.num_generators > 0
