"""Microbenchmarks of the solver substrates (not tied to a paper table).

These track the performance of the pieces everything else is built on:
unit propagation throughput, pigeonhole refutation, PB propagation,
encoding construction and symmetry detection — plus the head-to-head
the incremental K-search subsystem exists for: the chromatic-number
descent on one persistent solver against the historical fresh-solver-
per-query loop, on multi-K queens/mycielski descents.  Results land in
``BENCH_solver_micro.json``.
"""

from repro.api import ChromaticProblem, Pipeline
from repro.coloring.encoding import encode_coloring
from repro.coloring.verify import is_proper
from repro.core.formula import Formula
from repro.experiments.instances import get_instance
from repro.experiments.runner import run_descent
from repro.graphs.generators import mycielski_graph, queens_graph
from repro.graphs.graph import disjoint_union
from repro.pb.engine import PBSolver
from repro.sat.cdcl import CDCLSolver, solve_formula
from repro.symmetry.detect import detect_symmetries


def _pigeonhole(pigeons, holes):
    f = Formula()
    x = {(p, h): f.new_var() for p in range(pigeons) for h in range(holes)}
    for p in range(pigeons):
        f.add_clause([x[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                f.add_clause([-x[p1, h], -x[p2, h]])
    return f


def test_cdcl_pigeonhole(benchmark, bench_json):
    f = _pigeonhole(7, 6)
    result = benchmark(lambda: solve_formula(f))
    assert result.is_unsat
    bench_json.add(
        "pigeonhole-7-6", conflicts=result.stats.conflicts,
        propagations=result.stats.propagations,
        wall_seconds=result.stats.time_seconds,
    )


def test_cdcl_implication_chain(benchmark, bench_json):
    f = Formula(num_vars=2000)
    for i in range(1, 2000):
        f.add_clause([-i, i + 1])
    f.add_clause([1])

    def load_and_solve():
        # The chain propagates fully while the unit is loaded, so report
        # the solver's global counters, not the per-call solve() deltas.
        # repro: allow[RPR005] micro-bench times the concrete engine, not the factory
        solver = CDCLSolver(num_vars=f.num_vars)
        assert solver.add_formula(f)
        result = solver.solve()
        return result, solver

    (result, solver) = benchmark(load_and_solve)
    assert result.is_sat
    bench_json.add(
        "implication-chain-2000", conflicts=solver.stats.conflicts,
        propagations=solver.stats.propagations,
        wall_seconds=result.stats.time_seconds,
    )


def test_pb_cardinality_propagation(benchmark, bench_json):
    def build_and_solve():
        f = Formula(num_vars=300)
        f.add_at_least(list(range(1, 301)), 299)
        f.add_clause([-7])
        solver = PBSolver()
        solver.add_formula(f)
        return solver.solve(), solver

    (result, solver) = benchmark(build_and_solve)
    assert result.is_sat
    bench_json.add(
        "pb-cardinality-300", conflicts=solver.stats.conflicts,
        propagations=solver.stats.propagations,
        wall_seconds=result.stats.time_seconds,
    )


def test_encoding_construction(benchmark, bench_json):
    graph = queens_graph(8, 8)
    encoding = benchmark(lambda: encode_coloring(graph, 10))
    assert encoding.formula.num_vars == 64 * 10 + 10
    _, seconds = bench_json.timed(encode_coloring, graph, 10)
    bench_json.add("encode-queens8-k10", wall_seconds=seconds)


def test_symmetry_detection_queen5(benchmark, bench_json):
    formula = encode_coloring(queens_graph(5, 5), 6).formula

    def detect():
        return detect_symmetries(formula, compute_order=False)

    report = benchmark(detect)
    assert report.num_generators > 0
    bench_json.add(
        "detect-queen5-k6", generators=report.num_generators,
        wall_seconds=report.detection_seconds,
    )


# The multi-K descents the incremental subsystem targets: an all-SAT
# queens staircase (DSATUR overshoots, the clique bound stops the
# descent without an UNSAT proof) and a mycielski bisection whose
# probes are UNSAT-heavy (exercises failed-assumption cores).
DESCENT_SUITE = (
    ("queens7_7", lambda: queens_graph(7, 7), "linear", 7),
    ("myciel4", lambda: mycielski_graph(4), "binary", 5),
)


def test_incremental_vs_scratch_descent(bench_json):
    """The head-to-head behind the PR: one persistent solver vs scratch.

    Asserts the incremental descent shows >= 2x fewer total conflicts
    or >= 1.5x wall-clock speedup over the suite, and that both modes
    agree on every chromatic number.
    """
    totals = {True: [0, 0.0], False: [0, 0.0]}  # mode -> [conflicts, secs]
    for name, build, strategy, chi in DESCENT_SUITE:
        graph = build()
        for incremental in (True, False):
            record = run_descent(
                name, graph, strategy=strategy,
                incremental=incremental, time_limit=120,
            )
            assert record.status == "OPTIMAL", (name, incremental)
            assert record.chromatic_number == chi, (name, incremental)
            assert record.sat_calls >= 2, (name, incremental)
            totals[incremental][0] += record.conflicts
            totals[incremental][1] += record.seconds
            fields = record.as_json()
            fields.pop("instance")
            bench_json.add(f"descent-{name}", **fields)
    conflict_ratio = totals[False][0] / max(1, totals[True][0])
    wall_speedup = totals[False][1] / max(1e-9, totals[True][1])
    bench_json.add(
        "descent-aggregate",
        scratch_conflicts=totals[False][0],
        incremental_conflicts=totals[True][0],
        conflict_ratio=round(conflict_ratio, 3),
        scratch_seconds=round(totals[False][1], 4),
        incremental_seconds=round(totals[True][1], 4),
        wall_speedup=round(wall_speedup, 3),
    )
    print(f"\n  incremental K-search: {conflict_ratio:.2f}x fewer conflicts, "
          f"{wall_speedup:.2f}x wall-clock speedup over scratch")
    assert conflict_ratio >= 2.0 or wall_speedup >= 1.5, (
        f"incremental descent lost its edge: {conflict_ratio:.2f}x conflicts, "
        f"{wall_speedup:.2f}x wall-clock"
    )


def test_component_pool_vs_whole_kernel_descent(bench_json):
    """The pool-vs-whole-kernel head-to-head on a disconnected benchmark.

    A union of two registry instances (both triangle-free, so neither
    dissolves under peeling) descends two ways: the per-component
    Session pool (one persistent solver per component) and the
    historical whole-kernel single solver.  Both must agree with the
    from-scratch answer; the pool must create exactly one solver per
    component, which the bench gate pins (a silent fallback to the
    whole-kernel path would report 1).
    """
    graph = disjoint_union(
        get_instance("myciel3").graph(), get_instance("myciel4").graph()
    )
    records = {}
    for split, label in ((True, "pool"), (False, "whole-kernel")):
        record = run_descent(
            f"myciel3+myciel4[{label}]", graph, strategy="linear",
            incremental=True, time_limit=120, split_components=split,
        )
        assert record.status == "OPTIMAL", label
        assert record.chromatic_number == 5, label
        records[label] = record
        fields = record.as_json()
        fields.pop("instance")
        bench_json.add(f"descent-pool-union-{label}", **fields)
    pool, whole = records["pool"], records["whole-kernel"]
    assert pool.components == 2 and pool.solvers_created == 2
    assert whole.components == 1 and whole.solvers_created <= 1
    scratch = run_descent(
        "myciel3+myciel4[scratch]", graph, strategy="linear",
        incremental=False, time_limit=120,
    )
    assert scratch.status == "OPTIMAL"
    assert scratch.chromatic_number == pool.chromatic_number
    bench_json.add(
        "descent-pool-union-aggregate",
        pool_conflicts=pool.conflicts,
        whole_conflicts=whole.conflicts,
        scratch_conflicts=scratch.conflicts,
        pool_solvers_created=pool.solvers_created,
        pool_components=pool.components,
        pool_seconds=round(pool.seconds, 4),
        whole_seconds=round(whole.seconds, 4),
        scratch_seconds=round(scratch.seconds, 4),
    )
    print(f"\n  component pool: {pool.conflicts} conflicts on "
          f"{pool.components} solvers vs {whole.conflicts} whole-kernel, "
          f"{scratch.conflicts} scratch")


def test_incremental_descent_stays_incremental(bench_json):
    """Smoke guard: the default descent must not fall back to scratch.

    A silent regression to per-K scratch solving would keep answers
    correct while quietly discarding the persistent-solver speedup, so
    ``make bench-smoke`` fails if the ``cdcl-incremental`` backend ever
    reports more than one solver instantiation for a multi-query
    descent.  Runs through ``repro.api`` like every other caller.
    """
    result = (
        Pipeline()
        .solve(backend="cdcl-incremental", strategy="binary", time_limit=120)
        .run(ChromaticProblem(mycielski_graph(4)))
    )
    assert result.status == "OPTIMAL" and result.chromatic_number == 5
    assert len(result.queries) >= 2
    assert result.backend == "cdcl-incremental"
    assert result.solvers_created == 1, (
        f"incremental descent created {result.solvers_created} solvers; "
        "it has silently fallen back to per-K scratch solving"
    )
    bench_json.add(
        "smoke-incremental-guard", sat_calls=len(result.queries),
        solvers_created=result.solvers_created,
        conflicts=result.stats.conflicts,
        k_queries=[list(q) for q in result.queries],
    )


def test_tracing_overhead(bench_json):
    """The observability contract: tracing off costs nothing measurable.

    Three interleaved passes over the myciel4 binary descent, min of
    ``reps`` wall times each (min-of-reps is the stable estimator on a
    shared runner): two untraced passes — their ratio is the *disabled*
    overhead, i.e. the cost of the ``tracer is None`` branch the hot
    loop always pays, gated at <= 5% — and one pass under an installed
    :func:`repro.obs.tracing` sink (*enabled* overhead, gated loosely;
    it buys the full event stream).  The conflict counts must be
    identical across all three modes: observability must never perturb
    the search.  The record count of the enabled pass is deterministic
    at a fixed input, so the bench gate pins it exactly — a hook that
    silently stops emitting (or double-emits) fails ``make bench-check``
    even though every ratio would still look fine.
    """
    import io
    import time

    from repro.obs import read_trace, tracing

    graph = mycielski_graph(4)

    def descend():
        return run_descent(
            "myciel4", graph, strategy="binary",
            incremental=True, time_limit=120,
        )

    reps = 5
    best = {"baseline": float("inf"), "disabled": float("inf"),
            "enabled": float("inf")}
    conflicts = {}
    trace_records = 0
    for _ in range(reps):
        for mode in ("baseline", "disabled", "enabled"):
            sink = io.BytesIO()
            t0 = time.perf_counter()
            if mode == "enabled":
                with tracing(sink):
                    record = descend()
            else:
                record = descend()
            wall = time.perf_counter() - t0
            best[mode] = min(best[mode], wall)
            conflicts.setdefault(mode, record.conflicts)
            assert record.conflicts == conflicts[mode], mode
            if mode == "enabled":
                trace_records = len(read_trace(sink.getvalue()).records)
    assert record.status == "OPTIMAL" and record.chromatic_number == 5
    assert conflicts["baseline"] == conflicts["disabled"] == conflicts["enabled"], (
        "tracing perturbed the search", conflicts)
    assert trace_records > conflicts["enabled"]  # every conflict + lifecycle
    disabled_ratio = best["disabled"] / best["baseline"]
    enabled_ratio = best["enabled"] / best["baseline"]
    bench_json.add(
        "tracing-overhead",
        baseline_seconds=round(best["baseline"], 4),
        disabled_seconds=round(best["disabled"], 4),
        enabled_seconds=round(best["enabled"], 4),
        disabled_overhead_ratio=round(disabled_ratio, 3),
        enabled_overhead_ratio=round(enabled_ratio, 3),
        trace_records=trace_records,
        conflicts=conflicts["enabled"],
    )
    print(f"\n  tracing overhead: disabled {disabled_ratio:.3f}x, "
          f"enabled {enabled_ratio:.3f}x ({trace_records} records)")


def test_budgeted_descent_degrades_verifiably(bench_json):
    """Anytime-degradation guard: an expired budget returns work, not None.

    A descent whose budget expires immediately must still come back
    ``FEASIBLE``/``degraded`` with the *verified* greedy coloring as its
    upper bound — the resilience layer's contract (docs/resilience.md).
    The greedy bound at a fixed input is deterministic, so the bench
    gate pins it: a regression that loses the best-so-far coloring (or
    lets the bound drift) fails ``make bench-check``.
    """
    graph = mycielski_graph(4)
    result = (
        Pipeline()
        .solve(backend="cdcl-incremental", strategy="linear", time_limit=1e-9)
        .run(ChromaticProblem(graph))
    )
    assert result.status == "FEASIBLE" and result.degraded
    assert result.coloring is not None and is_proper(graph, result.coloring)
    assert result.num_colors == result.upper_bound == 5
    bench_json.add(
        "descent-budgeted-myciel4",
        num_colors=result.num_colors,
        upper_bound=result.upper_bound,
        degraded=int(result.degraded),
    )
