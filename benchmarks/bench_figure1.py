"""Regenerate Figure 1: SBP strength on the paper's worked example."""

from conftest import run_once

from repro.experiments.figure1 import figure1_counts, render_figure1


def test_figure1(benchmark, bench_json):
    (rows, seconds) = bench_json.timed(run_once, benchmark, figure1_counts)
    print()
    print(render_figure1(rows))
    for r in rows:
        bench_json.add(f"figure1-{r.sbp_kind}", optimal_allowed=r.optimal_allowed)
    bench_json.add("figure1-total", wall_seconds=seconds)
    by_kind = {r.sbp_kind: r for r in rows}
    assert by_kind["none"].optimal_allowed == 48
    assert by_kind["nu"].optimal_allowed == 12
    assert by_kind["ca"].optimal_allowed == 4
    assert by_kind["li"].optimal_allowed == 2
