"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures at the
``bench`` scale (seconds per table) and prints the reproduced rows, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
run.  Use ``python -m repro.experiments all --scale small|paper`` for
the larger-scale versions.
"""

import pytest

from repro.experiments.instances import get_scale


@pytest.fixture(scope="session")
def bench_scale():
    return get_scale("bench")


def run_once(benchmark, fn, *args, **kwargs):
    """Run a table driver exactly once under the benchmark timer.

    Table drivers are minutes-long compared to microbenchmarks; a single
    timed round keeps the harness usable while still recording the
    regeneration cost.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
