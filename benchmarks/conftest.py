"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures at the
``bench`` scale (seconds per table) and prints the reproduced rows, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
run.  Use ``python -m repro.experiments all --scale small|paper`` for
the larger-scale versions.

Every ``bench_<name>.py`` module additionally emits a machine-readable
``BENCH_<name>.json`` next to itself through the :func:`bench_json`
fixture — one entry per measured configuration with whatever fields
apply (instance, K queries, conflicts, propagations, wall seconds) —
so the perf trajectory of the repo can be tracked across commits
(``make bench-json`` regenerates all of them quickly).
"""

import json
import os
import time

import pytest

from repro.experiments.instances import get_scale


@pytest.fixture(scope="session")
def bench_scale():
    return get_scale("bench")


def run_once(benchmark, fn, *args, **kwargs):
    """Run a table driver exactly once under the benchmark timer.

    Table drivers are minutes-long compared to microbenchmarks; a single
    timed round keeps the harness usable while still recording the
    regeneration cost.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


class BenchReport:
    """Collects benchmark entries and writes them as ``BENCH_<name>.json``."""

    def __init__(self, name: str, path: str):
        self.name = name
        self.path = path
        self.results = []

    def add(self, instance: str, **fields) -> None:
        """Record one measured configuration.

        ``instance`` names what was measured; keyword fields carry the
        numbers (k_queries, conflicts, propagations, wall_seconds, ...).
        """
        entry = {"instance": instance}
        entry.update(fields)
        self.results.append(entry)

    @staticmethod
    def timed(fn, *args, **kwargs):
        """Run ``fn`` and return ``(result, wall_seconds)``."""
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        return result, time.perf_counter() - start

    def write(self) -> None:
        """Write the report, merging over any previous record.

        Partial runs (``-k`` selections, ``--benchmark-only`` skipping
        non-benchmark tests, a failure mid-module) must not clobber a
        complete perf record: entries from this run replace previous
        entries with the same instance name, and instances that did not
        run this time keep their old numbers.
        """
        merged = {}
        try:
            with open(self.path) as fh:
                for entry in json.load(fh).get("results", ()):
                    merged.setdefault(entry.get("instance"), []).append(entry)
        except (OSError, ValueError):
            pass
        fresh = {}
        for entry in self.results:
            fresh.setdefault(entry["instance"], []).append(entry)
        merged.update(fresh)
        results = [e for entries in merged.values() for e in entries]
        results.sort(key=lambda e: str(e.get("instance")))
        payload = {"bench": self.name, "results": results}
        with open(self.path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")


@pytest.fixture(scope="module")
def bench_json(request):
    """Module-scoped JSON report; written on module teardown."""
    stem = request.module.__name__
    if stem.startswith("bench_"):
        stem = stem[len("bench_"):]
    path = os.path.join(
        os.path.dirname(request.module.__file__), f"BENCH_{stem}.json"
    )
    report = BenchReport(stem, path)
    yield report
    report.write()
