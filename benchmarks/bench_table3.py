"""Regenerate Table 3: solver x SBP grid at the primary color budget."""

from conftest import run_once

from repro.experiments.tables import render_solver_table, table3


def test_table3(benchmark, bench_scale, bench_json):
    (table, seconds) = bench_json.timed(run_once, benchmark, table3, bench_scale)
    print()
    print(render_solver_table(table, bench_scale.solvers))
    for (sbp, solver, inst_dep), cell in sorted(table.cells.items()):
        bench_json.add(
            f"{solver}-{sbp}{'-sbps' if inst_dep else ''}",
            k=table.k, num_solved=cell.num_solved,
            wall_seconds=round(cell.total_seconds, 4),
        )
    bench_json.add("table3-total", wall_seconds=seconds)
    # Paper trend: instance-dependent SBPs never solve fewer instances
    # than the bare encoding for the specialized solvers.
    for solver in bench_scale.solvers:
        bare = table.cells[("none", solver, False)]
        with_sbps = table.cells[("none", solver, True)]
        assert with_sbps.num_solved >= bare.num_solved
