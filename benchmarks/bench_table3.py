"""Regenerate Table 3: solver x SBP grid at the primary color budget."""

from conftest import run_once

from repro.experiments.tables import render_solver_table, table3


def test_table3(benchmark, bench_scale):
    table = run_once(benchmark, table3, bench_scale)
    print()
    print(render_solver_table(table, bench_scale.solvers))
    # Paper trend: instance-dependent SBPs never solve fewer instances
    # than the bare encoding for the specialized solvers.
    for solver in bench_scale.solvers:
        bare = table.cells[("none", solver, False)]
        with_sbps = table.cells[("none", solver, True)]
        assert with_sbps.num_solved >= bare.num_solved
