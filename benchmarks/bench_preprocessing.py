"""Benchmarks of the CNF simplification pipeline.

Two questions, matching the pipeline's two jobs:

* **subsumption throughput** — the occurrence-list engine
  (:func:`repro.sat.preprocessing.subsume_clauses`) against the
  sorted-once pairwise loop it replaced, on formulas of >= 10k clauses
  (the legacy loop is reproduced below, minus its soundness bug, as the
  measurement baseline);
* **end-to-end effect** — preprocessing a real coloring encoding, and
  the full ``find_chromatic_number`` pipeline (peel + split + simplify)
  against the raw path on the paper's sparse families (books, register
  interference), where kernelization routinely deletes the whole graph.
"""

import random
import time

import pytest

from repro.api import ChromaticProblem, Pipeline
from repro.coloring.sat_pipeline import encode_k_coloring_cnf
from repro.graphs.generators import book_graph, interference_graph
from repro.sat.preprocessing import preprocess, subsume_clauses


def random_clauses(num_clauses, num_vars, seed=42, min_width=2, max_width=5):
    """Seeded random CNF; width and polarity drawn uniformly."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(min_width, max_width)
        lits = rng.sample(range(1, num_vars + 1), width)
        clauses.append(tuple(l * rng.choice((1, -1)) for l in lits))
    return clauses


def subsume_quadratic(clauses):
    """The seed's pairwise subsumption loop (soundness bug removed).

    Kept verbatim-in-spirit as the baseline the indexed engine is
    measured against: clauses sorted by length once, every pair (i, j)
    with i < j visited, signature prefilter, no re-queueing.
    """
    def signature(clause):
        sig = 0
        for lit in clause:
            sig |= 1 << (abs(lit) & 63)
        return sig

    ordered = sorted(
        {c for c in clauses if not any(-l in c for l in c)}, key=len
    )
    sigs = [signature(c) for c in ordered]
    sets = [frozenset(c) for c in ordered]
    removed = [False] * len(ordered)
    subsumed = 0
    strengthened = 0
    for i in range(len(ordered)):
        if removed[i]:
            continue
        for j in range(i + 1, len(ordered)):
            if removed[j] or len(ordered[j]) < len(ordered[i]):
                continue
            if sigs[i] & ~sigs[j]:
                continue
            if sets[i] <= sets[j]:
                removed[j] = True
                subsumed += 1
                continue
            diff = sets[i] - sets[j]
            if len(diff) == 1:
                lit = next(iter(diff))
                if -lit in sets[j] and (sets[i] - {lit}) <= sets[j]:
                    new_clause = tuple(l for l in ordered[j] if l != -lit)
                    ordered[j] = new_clause
                    sets[j] = frozenset(new_clause)
                    sigs[j] = signature(new_clause)
                    strengthened += 1
    kept = [c for c, gone in zip(ordered, removed) if not gone]
    return kept, subsumed, strengthened


def test_subsumption_indexed_10k(benchmark, bench_json):
    clauses = random_clauses(10000, 2000)
    kept, subsumed, strengthened = benchmark.pedantic(
        subsume_clauses, args=(clauses,), rounds=3, iterations=1
    )
    assert len(kept) <= len(clauses)
    # One standalone timed run: pedantic round counts differ between
    # --benchmark-only and --benchmark-disable modes.
    _, seconds = bench_json.timed(subsume_clauses, clauses)
    bench_json.add("subsumption-indexed-10k", subsumed=subsumed,
                   strengthened=strengthened,
                   wall_seconds=round(seconds, 4))


def test_indexed_beats_quadratic_10k(request, bench_json):
    # The head-to-head the occurrence-list index exists for: on >= 10k
    # clauses the pairwise loop does ~50M pair visits; the index walks
    # only shared-literal occurrence lists.  The quadratic baseline
    # takes several seconds by design, and the wall-clock comparison
    # only means something on an otherwise idle machine — so skip it in
    # the quick `--benchmark-disable` (make bench-smoke) runs.
    if request.config.getoption("benchmark_disable", False):
        pytest.skip("timing head-to-head runs only in full benchmark mode")
    clauses = random_clauses(10000, 2000)
    start = time.perf_counter()
    kept_idx, sub_idx, str_idx = subsume_clauses(clauses)
    indexed_seconds = time.perf_counter() - start
    start = time.perf_counter()
    kept_quad, sub_quad, str_quad = subsume_quadratic(clauses)
    quadratic_seconds = time.perf_counter() - start
    print(
        f"\n  subsumption @10k clauses: indexed {indexed_seconds:.3f}s "
        f"(sub={sub_idx}, str={str_idx})  quadratic {quadratic_seconds:.3f}s "
        f"(sub={sub_quad}, str={str_quad})  "
        f"speedup {quadratic_seconds / max(indexed_seconds, 1e-9):.1f}x"
    )
    bench_json.add("subsumption-head-to-head",
                   indexed_seconds=round(indexed_seconds, 4),
                   quadratic_seconds=round(quadratic_seconds, 4))
    # Both reach a fully-subsumption-reduced set of comparable size.
    assert abs(len(kept_idx) - len(kept_quad)) <= str_idx + str_quad
    assert indexed_seconds < quadratic_seconds


def test_preprocess_coloring_encoding(benchmark, bench_json):
    # A real CNF from the pipeline: book-graph 5-coloring (~10k clauses
    # once SBP units are included).
    graph = book_graph(250, 900, seed=7)
    formula, _ = encode_k_coloring_cnf(graph, 7, sbp_kind="nu+sc")
    assert len(formula.clauses) >= 10000

    def run():
        return preprocess(formula)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not result.is_unsat
    assert result.units_propagated >= 1
    _, seconds = bench_json.timed(run)
    bench_json.add("preprocess-book-encoding",
                   units=result.units_propagated,
                   subsumed=result.subsumed,
                   wall_seconds=round(seconds, 4))


def test_pipeline_speedup_sparse_families(benchmark, bench_json):
    # End-to-end: kernelization + simplification vs the raw path on the
    # paper's sparse families.  Answers must match; the pipeline should
    # not be slower (on books/register it peels the whole graph).
    instances = [
        ("book", book_graph(60, 150, seed=3)),
        ("register", interference_graph(40, 90, 5, seed=1)),
    ]

    full = (Pipeline()
            .symmetry(sbp_kind="nu")
            .solve(backend="pb-pbs2", time_limit=60))
    raw_pipe = full.reduce(False).simplify(False)

    def run_pipeline():
        return [
            full.run(ChromaticProblem(g)).num_colors for _, g in instances
        ]

    raw = []
    start = time.perf_counter()
    for _, g in instances:
        raw.append(raw_pipe.run(ChromaticProblem(g)).num_colors)
    raw_seconds = time.perf_counter() - start
    piped = benchmark.pedantic(run_pipeline, rounds=3, iterations=1)
    assert piped == raw
    print(f"\n  sparse families: raw path {raw_seconds:.3f}s "
          f"(chromatic numbers {raw}); pipeline benchmarked above")
    _, piped_seconds = bench_json.timed(run_pipeline)
    bench_json.add("sparse-families-pipeline", chromatic_numbers=piped,
                   raw_seconds=round(raw_seconds, 4),
                   pipeline_seconds=round(piped_seconds, 4))
