"""Section 4.3 comparison bench: our pipeline vs the problem-specific
comparators (Coudert 1997, Benhamou 2004) and the alternative ILP
formulation (Mehrotra & Trick 1996), plus the repeated-SAT route the
paper argues against in Section 2.3.

The paper's common data points are queens and myciel instances; this
bench reports all pipelines on the same instances and asserts they
agree on the chromatic number (the paper's Table-free comparison is
about runtimes; ours checks consistency and records the times).

The repeated-SAT and ILP sweeps run through :func:`repro.batch
.solve_many` — the same fleet runner the experiment tables use — so
this module doubles as the batch layer's perf fixture
(``REPRO_BENCH_JOBS`` sets the worker count; default 2).
"""

import os

import pytest

from repro.batch import GraphSpec, TaskSpec, solve_many
from repro.coloring.coudert import coudert_chromatic_number
from repro.coloring.mehrotra_trick import mt_chromatic_number
from repro.coloring.necsp import necsp_chromatic_number
from repro.experiments.instances import get_instance

CASES = [("myciel3", 4), ("myciel4", 5), ("queen5_5", 5)]
BATCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "2"))


def _repeated_sat_tasks():
    return [
        TaskSpec(
            graph=GraphSpec(instance=name), name=name, kind="chromatic",
            backend="cdcl-incremental", sbp_kind="nu", time_limit=60,
        )
        for name, _ in CASES
    ]


def _ilp_tasks():
    return [
        TaskSpec(
            graph=GraphSpec(instance=name), name=name,
            kind="budgeted-optimize", max_colors=chi + 2,
            backend="pb-pbs2", sbp_kind="nu+sc", time_limit=60,
        )
        for name, chi in CASES
    ]


@pytest.mark.parametrize("name,chi", CASES)
def test_coudert(benchmark, name, chi, bench_json):
    graph = get_instance(name).graph()
    result = benchmark(lambda: coudert_chromatic_number(graph, time_limit=30))
    assert result.chromatic_number == chi
    # Time one standalone run: benchmark() may loop many calibration
    # rounds, which would make wall_seconds incomparable across modes.
    _, seconds = bench_json.timed(coudert_chromatic_number, graph, time_limit=30)
    bench_json.add(f"{name}-coudert", chromatic_number=chi,
                   wall_seconds=round(seconds, 4))


@pytest.mark.parametrize("name,chi", CASES)
def test_necsp(benchmark, name, chi, bench_json):
    graph = get_instance(name).graph()
    result = benchmark(lambda: necsp_chromatic_number(graph, time_limit=30))
    assert result.chromatic_number == chi
    _, seconds = bench_json.timed(necsp_chromatic_number, graph, time_limit=30)
    bench_json.add(f"{name}-necsp", chromatic_number=chi,
                   wall_seconds=round(seconds, 4))


@pytest.mark.parametrize("name,chi", [("myciel3", 4), ("queen5_5", 5)])
def test_mehrotra_trick(benchmark, name, chi, bench_json):
    graph = get_instance(name).graph()
    result = benchmark(lambda: mt_chromatic_number(graph, time_limit=60))
    assert result.chromatic_number == chi
    _, seconds = bench_json.timed(mt_chromatic_number, graph, time_limit=60)
    bench_json.add(f"{name}-mehrotra-trick", chromatic_number=chi,
                   wall_seconds=round(seconds, 4))


def test_repeated_sat(benchmark, bench_json):
    """The whole repeated-SAT sweep as one batch over the fleet runner."""
    report = benchmark(lambda: solve_many(_repeated_sat_tasks(), jobs=BATCH_JOBS))
    for name, chi in CASES:
        record = report.record(name)
        assert record["status"] == "OPTIMAL"
        assert record["num_colors"] == chi
        bench_json.add(f"{name}-repeated-sat", chromatic_number=chi,
                       k_queries=record["queries"],
                       conflicts=record["conflicts"],
                       propagations=record["propagations"],
                       wall_seconds=round(record["seconds"], 4))
    bench_json.add("repeated-sat-batch", jobs=BATCH_JOBS,
                   wall_seconds=round(report.summary["wall_seconds"], 4))


def test_ilp_pipeline(benchmark, bench_json):
    """The ILP sweep (pb-pbs2, NU+SC) through the same batch facade."""
    report = benchmark(lambda: solve_many(_ilp_tasks(), jobs=BATCH_JOBS))
    for name, chi in CASES:
        record = report.record(name)
        assert record["status"] == "OPTIMAL"
        assert record["num_colors"] == chi
        bench_json.add(f"{name}-ilp-pipeline", chromatic_number=chi,
                       wall_seconds=round(record["seconds"], 4))
    bench_json.add("ilp-pipeline-batch", jobs=BATCH_JOBS,
                   wall_seconds=round(report.summary["wall_seconds"], 4))
