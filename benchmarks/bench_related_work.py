"""Section 4.3 comparison bench: our pipeline vs the problem-specific
comparators (Coudert 1997, Benhamou 2004) and the alternative ILP
formulation (Mehrotra & Trick 1996), plus the repeated-SAT route the
paper argues against in Section 2.3.

The paper's common data points are queens and myciel instances; this
bench reports all pipelines on the same instances and asserts they
agree on the chromatic number (the paper's Table-free comparison is
about runtimes; ours checks consistency and records the times).
"""

import pytest

from repro.api import BudgetedOptimize, ChromaticProblem, Pipeline
from repro.coloring.coudert import coudert_chromatic_number
from repro.coloring.mehrotra_trick import mt_chromatic_number
from repro.coloring.necsp import necsp_chromatic_number
from repro.experiments.instances import get_instance

CASES = [("myciel3", 4), ("myciel4", 5), ("queen5_5", 5)]


def _repeated_sat(graph):
    return (Pipeline()
            .symmetry(sbp_kind="nu")
            .solve(backend="cdcl-incremental", time_limit=60)
            .run(ChromaticProblem(graph)))


def _ilp_pipeline(graph, budget):
    return (Pipeline()
            .symmetry(sbp_kind="nu+sc")
            .solve(backend="pb-pbs2", time_limit=60)
            .run(BudgetedOptimize(graph, budget)))


@pytest.mark.parametrize("name,chi", CASES)
def test_coudert(benchmark, name, chi, bench_json):
    graph = get_instance(name).graph()
    result = benchmark(lambda: coudert_chromatic_number(graph, time_limit=30))
    assert result.chromatic_number == chi
    # Time one standalone run: benchmark() may loop many calibration
    # rounds, which would make wall_seconds incomparable across modes.
    _, seconds = bench_json.timed(coudert_chromatic_number, graph, time_limit=30)
    bench_json.add(f"{name}-coudert", chromatic_number=chi,
                   wall_seconds=round(seconds, 4))


@pytest.mark.parametrize("name,chi", CASES)
def test_necsp(benchmark, name, chi, bench_json):
    graph = get_instance(name).graph()
    result = benchmark(lambda: necsp_chromatic_number(graph, time_limit=30))
    assert result.chromatic_number == chi
    _, seconds = bench_json.timed(necsp_chromatic_number, graph, time_limit=30)
    bench_json.add(f"{name}-necsp", chromatic_number=chi,
                   wall_seconds=round(seconds, 4))


@pytest.mark.parametrize("name,chi", [("myciel3", 4), ("queen5_5", 5)])
def test_mehrotra_trick(benchmark, name, chi, bench_json):
    graph = get_instance(name).graph()
    result = benchmark(lambda: mt_chromatic_number(graph, time_limit=60))
    assert result.chromatic_number == chi
    _, seconds = bench_json.timed(mt_chromatic_number, graph, time_limit=60)
    bench_json.add(f"{name}-mehrotra-trick", chromatic_number=chi,
                   wall_seconds=round(seconds, 4))


@pytest.mark.parametrize("name,chi", CASES)
def test_repeated_sat(benchmark, name, chi, bench_json):
    graph = get_instance(name).graph()
    result = benchmark(lambda: _repeated_sat(graph))
    assert result.chromatic_number == chi
    timed, seconds = bench_json.timed(_repeated_sat, graph)
    bench_json.add(f"{name}-repeated-sat", chromatic_number=chi,
                   k_queries=[list(q) for q in timed.queries],
                   conflicts=timed.stats.conflicts,
                   propagations=timed.stats.propagations,
                   wall_seconds=round(seconds, 4))


@pytest.mark.parametrize("name,chi", CASES)
def test_ilp_pipeline(benchmark, name, chi, bench_json):
    graph = get_instance(name).graph()
    result = benchmark(lambda: _ilp_pipeline(graph, chi + 2))
    assert result.num_colors == chi
    _, seconds = bench_json.timed(_ilp_pipeline, graph, chi + 2)
    bench_json.add(f"{name}-ilp-pipeline", chromatic_number=chi,
                   wall_seconds=round(seconds, 4))
