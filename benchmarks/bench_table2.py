"""Regenerate Table 2: formula sizes, symmetry counts, detection time."""

from conftest import run_once

from repro.experiments.tables import render_table2, table2


def test_table2(benchmark, bench_scale, bench_json):
    (rows, seconds) = bench_json.timed(run_once, benchmark, table2, bench_scale)
    print()
    print(render_table2(rows))
    for r in rows:
        bench_json.add(
            f"sbp-{r.sbp_kind}", generators=r.num_generators,
            symmetry_order=r.order, wall_seconds=r.detection_seconds,
        )
    bench_json.add("table2-total", wall_seconds=seconds)
    by_kind = {r.sbp_kind: r for r in rows}
    # Paper trends: NU/CA shrink the group, LI leaves only the identity,
    # SC barely changes it, detection is fastest once symmetry is gone.
    assert by_kind["li"].order == len(bench_scale.instance_names)
    assert by_kind["nu"].order < by_kind["none"].order
    assert by_kind["ca"].order < by_kind["none"].order
    assert by_kind["sc"].order > by_kind["nu"].order
    assert by_kind["li"].detection_seconds <= by_kind["none"].detection_seconds
